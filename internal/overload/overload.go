// Package overload is the fast-path protection layer between the router and
// the control plane: per-device saturation signals, deterministic
// deadline-based admission control (shed-on-arrival instead of
// shed-after-timeout), bounded per-device mailboxes with high/low-water
// backpressure, and emergency accuracy degradation driven by the tsdb SLO
// burn monitor — the reactive counterpart of the controller's once-per-period
// accuracy scaling. Between MILP solves a demand spike can only queue up and
// blow the SLO; the guard degrades accuracy first and sheds last, within
// milliseconds of the signal.
//
// The guard is engine-agnostic: both the simulator (internal/core) and the
// live cluster (internal/serving) feed it timestamps, queue depths and burn
// transitions, and consult it on the routing path. All state transitions are
// pure functions of those inputs, so seeded simulator runs remain
// byte-deterministic (the package is in proteus-lint's determinism set). A
// nil *Guard turns every method into a cheap no-op, matching the telemetry
// package's "nil is off, and off is free" convention.
package overload

import (
	"sync"
	"time"

	"proteus/internal/telemetry"
)

// Config parameterizes a Guard. The zero value (Enabled false) disables the
// whole layer; engines then skip constructing a Guard at all.
type Config struct {
	// Enabled turns the overload guard on.
	Enabled bool
	// DisableAdmission turns off deadline-based admission control (queries
	// are routed even when they provably cannot meet their SLO).
	DisableAdmission bool
	// DisableBackpressure turns off the high/low-water mailbox bounds.
	DisableBackpressure bool
	// DisableDegradation turns off burn-triggered emergency accuracy
	// degradation, leaving admission control and backpressure only
	// ("shed-only" in the Overload experiment).
	DisableDegradation bool
	// HighWater is the per-device queue depth at which the router stops
	// routing to the device; LowWater re-admits it. Defaults 64 and
	// HighWater/2 (hysteresis: LowWater must be below HighWater).
	HighWater int
	LowWater  int
	// RestoreHold is how long a family's SLO burn must stay clear before an
	// emergency degradation is rolled back (the restore edge of the
	// hysteresis). Default 5s.
	RestoreHold time.Duration
	// EscalateAfter escalates an active degradation one tier further when
	// the burn persists this long past the previous step. Default 10s.
	EscalateAfter time.Duration
	// RedegradeCooldown is the minimum gap between a restore and the next
	// degradation of the same family (the degrade edge of the hysteresis,
	// so the guard cannot flap). Default 10s.
	RedegradeCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.HighWater <= 0 {
		c.HighWater = 64
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = c.HighWater / 2
	}
	if c.RestoreHold <= 0 {
		c.RestoreHold = 5 * time.Second
	}
	if c.EscalateAfter <= 0 {
		c.EscalateAfter = 10 * time.Second
	}
	if c.RedegradeCooldown <= 0 {
		c.RedegradeCooldown = 10 * time.Second
	}
	return c
}

// DeviceProfile is what the hosting engine tells the guard about one device
// under the current plan: which family it serves, at what accuracy, and the
// profiled batch-latency envelope the admission bound interpolates.
type DeviceProfile struct {
	// Family is the served family index, or -1 for an idle device.
	Family int
	// Accuracy of the hosted variant (percent), used to order degradation
	// tiers.
	Accuracy float64
	// MaxBatch is the SLO- and memory-capped batch size.
	MaxBatch int
	// Lat1 and LatMax are the profiled batch-1 and batch-MaxBatch
	// latencies; batch latency is affine in size, so the two points define
	// the whole envelope.
	Lat1   time.Duration
	LatMax time.Duration
	// SLO is the family's latency SLO.
	SLO time.Duration
}

// ChangeKind labels a degradation-state transition.
type ChangeKind string

// The degradation-ladder transitions.
const (
	// Degrade opens an episode: the family's highest-accuracy tier is
	// masked from routing.
	Degrade ChangeKind = "degrade"
	// Escalate masks one more tier of an already-degraded family.
	Escalate ChangeKind = "escalate"
	// Restore closes the episode: the planned routing is reinstated.
	Restore ChangeKind = "restore"
)

// Change is one degradation-state transition, returned to the hosting engine
// so it can trace, count and audit the episode.
type Change struct {
	At     time.Duration
	Family int
	Kind   ChangeKind
	// Level is the number of masked accuracy tiers after the transition
	// (0 after a restore).
	Level int
	// Episode is the id of the episode this transition belongs to: opened
	// by the Degrade, carried by Escalates, and closed by the Restore.
	// Episode ids are guard-global, monotone from 1.
	Episode int
	// Reason explains the transition for the decision audit.
	Reason string
}

// famState is one family's degradation ladder.
type famState struct {
	// tiers[i] lists the devices hosting the family's i-th accuracy tier,
	// highest accuracy first; level is how many leading tiers are masked.
	tiers   [][]int
	level   int
	burning bool
	// episode is the id of the active degradation episode (0 when level ==
	// 0). Stamped onto enqueue trace events so attribution can join a
	// query's exec latency to the degradation that shaped it.
	episode int
	// clearSince is when the burn last ended (valid when !burning);
	// lastStep is the time of the most recent degrade/escalate; lastRestore
	// the most recent restore.
	clearSince  time.Duration
	lastStep    time.Duration
	lastRestore time.Duration
}

// devState is one device's saturation bookkeeping.
type devState struct {
	prof      DeviceProfile
	depth     int
	pressured bool
	// marginal is the per-item latency increment (LatMax-Lat1)/(MaxBatch-1),
	// precomputed at SetPlan so Admit is division-free.
	marginal time.Duration
	// tier is the device's rank in its family's accuracy ladder (0 =
	// highest accuracy), or -1 when idle.
	tier int
}

// Guard is the overload-protection state machine. All methods are safe for
// concurrent use; the mutex is a leaf lock (no Guard method calls out while
// holding it), so callers may hold their own locks around any call.
type Guard struct {
	mu   sync.Mutex
	cfg  Config
	devs []devState
	fams []famState
	// epSeq numbers degradation episodes guard-globally, monotone from 1.
	epSeq int

	counters Counters
}

// New builds a guard for the given family and device counts. Returns nil
// when the config does not enable the guard, so call sites can keep the
// nil-is-off convention without their own flag checks.
func New(cfg Config, families, devices int) *Guard {
	if !cfg.Enabled {
		return nil
	}
	g := &Guard{cfg: cfg.withDefaults()}
	g.devs = make([]devState, devices)
	for d := range g.devs {
		g.devs[d].prof.Family = -1
		g.devs[d].tier = -1
	}
	g.fams = make([]famState, families)
	return g
}

// Counters is the pre-resolved overload counter bundle (see
// telemetry.NewOverloadCounters).
type Counters = telemetry.OverloadCounters

// Instrument resolves the guard's counters from a telemetry registry (a nil
// registry leaves them inert).
func (g *Guard) Instrument(r *telemetry.Registry) {
	if g == nil {
		return
	}
	// Resolve the counters before taking g.mu: NewOverloadCounters locks the
	// registry, and holding g.mu across it would nest the guard's lock over
	// telemetry's (flagged by the lockorder checker).
	counters := telemetry.NewOverloadCounters(r)
	g.mu.Lock()
	g.counters = counters
	g.mu.Unlock()
}

// Config returns the resolved configuration (zero value on a nil guard).
func (g *Guard) Config() Config {
	if g == nil {
		return Config{}
	}
	return g.cfg
}

// SetPlan installs the per-device profiles of a newly applied plan and
// rebuilds each family's degradation tiers. Active episodes survive a plan
// change (the burn that caused them usually persists across plans); levels
// are clamped to the new ladder's height.
func (g *Guard) SetPlan(now time.Duration, profs []DeviceProfile) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.devs) < len(profs) {
		g.devs = append(g.devs, devState{prof: DeviceProfile{Family: -1}, tier: -1})
	}
	for d := range g.devs {
		p := DeviceProfile{Family: -1}
		if d < len(profs) {
			p = profs[d]
		}
		g.devs[d].prof = p
		g.devs[d].tier = -1
		g.devs[d].marginal = 0
		if p.MaxBatch > 1 {
			g.devs[d].marginal = (p.LatMax - p.Lat1) / time.Duration(p.MaxBatch-1)
		}
	}
	for f := range g.fams {
		fam := &g.fams[f]
		fam.tiers = fam.tiers[:0]
		// Group the family's devices into distinct accuracy tiers, highest
		// first. Device order inside a tier follows device index, so the
		// grouping is deterministic.
		type tier struct {
			acc  float64
			devs []int
		}
		var tiers []tier
		for d := range g.devs {
			p := g.devs[d].prof
			if p.Family != f || p.MaxBatch < 1 {
				continue
			}
			placed := false
			for i := range tiers {
				if tiers[i].acc == p.Accuracy {
					tiers[i].devs = append(tiers[i].devs, d)
					placed = true
					break
				}
			}
			if !placed {
				// Insert keeping accuracy descending.
				at := len(tiers)
				for i := range tiers {
					if p.Accuracy > tiers[i].acc {
						at = i
						break
					}
				}
				tiers = append(tiers, tier{})
				copy(tiers[at+1:], tiers[at:])
				tiers[at] = tier{acc: p.Accuracy, devs: []int{d}}
			}
		}
		for _, t := range tiers {
			fam.tiers = append(fam.tiers, t.devs)
		}
		// The ladder never masks the last tier: at least one accuracy level
		// keeps serving.
		if max := len(fam.tiers) - 1; fam.level > max {
			if max < 0 {
				max = 0
			}
			fam.level = max
			if fam.level == 0 {
				// The new ladder has nothing left to mask, so the episode
				// effectively ended with the plan change.
				fam.episode = 0
			}
		}
		for l, devs := range fam.tiers {
			for _, d := range devs {
				g.devs[d].tier = l
			}
		}
	}
}

// NoteDepth records device d's current queue depth and applies the
// high/low-water backpressure hysteresis.
func (g *Guard) NoteDepth(d, depth int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if d < 0 || d >= len(g.devs) {
		return
	}
	dev := &g.devs[d]
	dev.depth = depth
	if g.cfg.DisableBackpressure {
		return
	}
	if !dev.pressured && depth >= g.cfg.HighWater {
		dev.pressured = true
		g.counters.Backpressured.Inc()
	} else if dev.pressured && depth <= g.cfg.LowWater {
		dev.pressured = false
	}
}

// queueBound returns a lower bound on the delay before a query arriving at
// device d (behind depth queued queries) completes: every earlier query
// processed in back-to-back maximal batches, the new query executing in the
// first batch with room. Ignoring the in-flight batch and batching waits
// keeps it a true lower bound — a rejection is provably correct. Caller
// holds g.mu.
func (g *Guard) queueBound(dev *devState) time.Duration {
	p := dev.prof
	n := dev.depth // queries ahead of the new arrival
	if p.MaxBatch < 1 {
		return 0
	}
	fullBatches := n / p.MaxBatch
	rem := n % p.MaxBatch // earlier queries sharing the new query's batch
	lb := time.Duration(fullBatches) * p.LatMax
	lb += p.Lat1 + time.Duration(rem)*dev.marginal
	return lb
}

// Admit reports whether a query with the given deadline can still possibly
// meet it if routed to device d now. Rejections are counted; a rejected
// query should be shed at the router (shed-on-arrival) instead of expiring
// in the queue.
func (g *Guard) Admit(now time.Duration, d int, deadline time.Duration) bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.DisableAdmission || d < 0 || d >= len(g.devs) {
		g.counters.Admitted.Inc()
		return true
	}
	if now+g.queueBound(&g.devs[d]) > deadline {
		g.counters.Rejected.Inc()
		return false
	}
	g.counters.Admitted.Inc()
	return true
}

// Banned reports whether the router should currently avoid device d for
// family f: the device is over its high-water mark, or an active
// degradation episode masks its accuracy tier. The router renormalizes the
// plan's weights over the remaining devices.
func (g *Guard) Banned(f, d int) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if d < 0 || d >= len(g.devs) {
		return false
	}
	dev := &g.devs[d]
	if dev.pressured {
		return true
	}
	if f >= 0 && f < len(g.fams) {
		fam := &g.fams[f]
		if fam.level > 0 && dev.tier >= 0 && dev.tier < fam.level && dev.prof.Family == f {
			return true
		}
	}
	return false
}

// OnBurn feeds an SLO burn-state transition of family f into the
// degradation ladder. A burn start degrades immediately — never waiting for
// the next control period — unless the redegrade cooldown since the last
// restore is still running (Tick retries then). A burn end only starts the
// restore-hold clock; Tick performs the restore once the burn stays clear.
// Safe to call from the tsdb recorder's burn callback (the guard's lock is
// a leaf).
func (g *Guard) OnBurn(now time.Duration, f int, start bool) []Change {
	if g == nil || f < 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f >= len(g.fams) {
		return nil
	}
	fam := &g.fams[f]
	fam.burning = start
	if !start {
		fam.clearSince = now
		return nil
	}
	return g.tryDegrade(now, f, "slo_burn")
}

// tryDegrade opens (or refuses to open) an episode for family f. Caller
// holds g.mu.
func (g *Guard) tryDegrade(now time.Duration, f int, reason string) []Change {
	fam := &g.fams[f]
	if g.cfg.DisableDegradation || fam.level > 0 || len(fam.tiers) < 2 {
		return nil
	}
	if fam.lastRestore > 0 && now-fam.lastRestore < g.cfg.RedegradeCooldown {
		return nil // Tick retries once the cooldown elapses
	}
	fam.level = 1
	fam.lastStep = now
	g.epSeq++
	fam.episode = g.epSeq
	g.counters.Degraded.Inc()
	return []Change{{At: now, Family: f, Kind: Degrade, Level: 1, Episode: fam.episode, Reason: reason}}
}

// Tick advances the time-based edges of the ladder: escalation of a
// persistent burn, degradation deferred by the redegrade cooldown, and
// restoration after the burn has stayed clear for the restore hold. Engines
// call it at a fixed cadence (the simulator on its virtual clock, the live
// server off a ticker), so the transitions are deterministic in simulation.
func (g *Guard) Tick(now time.Duration) []Change {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var changes []Change
	for f := range g.fams {
		fam := &g.fams[f]
		switch {
		case fam.burning && fam.level == 0:
			// A deferred degrade (redegrade cooldown was running when the
			// burn started).
			changes = append(changes, g.tryDegrade(now, f, "slo_burn_pending")...)
		case fam.burning && fam.level > 0:
			if fam.level < len(fam.tiers)-1 && now-fam.lastStep >= g.cfg.EscalateAfter {
				fam.level++
				fam.lastStep = now
				g.counters.Escalated.Inc()
				changes = append(changes, Change{
					At: now, Family: f, Kind: Escalate, Level: fam.level,
					Episode: fam.episode, Reason: "burn_persisting",
				})
			}
		case !fam.burning && fam.level > 0:
			if now-fam.clearSince >= g.cfg.RestoreHold {
				closed := fam.episode
				fam.level = 0
				fam.episode = 0
				fam.lastRestore = now
				g.counters.Restored.Inc()
				changes = append(changes, Change{
					At: now, Family: f, Kind: Restore, Level: 0,
					Episode: closed, Reason: "burn_cleared",
				})
			}
		}
	}
	return changes
}

// DeviceSignal returns device d's saturation signal: the estimated queueing
// delay for a new arrival as a fraction of the family SLO in thousandths
// (capped at 10x the SLO), and whether backpressure currently excludes the
// device from routing.
func (g *Guard) DeviceSignal(d int) (satMilli int, pressured bool) {
	if g == nil {
		return 0, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if d < 0 || d >= len(g.devs) {
		return 0, false
	}
	dev := &g.devs[d]
	if dev.prof.SLO <= 0 || dev.prof.MaxBatch < 1 {
		return 0, dev.pressured
	}
	sat := int(g.queueBound(dev) * 1000 / dev.prof.SLO)
	if sat > 10000 {
		sat = 10000
	}
	return sat, dev.pressured
}

// DeviceOverload is one device's row in the overload state report.
type DeviceOverload struct {
	Device int `json:"device"`
	// SatMilli is the estimated queueing delay for a new arrival in
	// thousandths of the served family's SLO (0 for idle devices).
	SatMilli int `json:"sat_milli"`
	// QueueDepth is the last reported mailbox depth.
	QueueDepth int `json:"queue_depth"`
	// Pressured marks devices excluded from routing by backpressure.
	Pressured bool `json:"pressured"`
}

// Episode is one family's active degradation episode in the state report.
type Episode struct {
	Family int `json:"family"`
	// ID is the guard-global episode id (matches the Episode field of the
	// Change that opened it and of enqueue trace events recorded under it).
	ID int `json:"id"`
	// Level is the number of masked accuracy tiers.
	Level int `json:"level"`
	// Since is the time of the episode's most recent degrade/escalate step.
	Since time.Duration `json:"since_ns"`
	// Reason is why the episode is active ("slo_burn").
	Reason string `json:"reason"`
}

// State is the guard's externally visible snapshot, served by /healthz so
// probes can distinguish "degraded by plan" from "degraded by overload".
type State struct {
	Enabled bool             `json:"enabled"`
	Devices []DeviceOverload `json:"devices"`
	// Episodes lists families under active emergency degradation (empty
	// when routing follows the plan).
	Episodes []Episode `json:"episodes,omitempty"`
}

// State snapshots the guard (zero-value State on a nil guard).
func (g *Guard) State() State {
	if g == nil {
		return State{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := State{Enabled: true}
	for d := range g.devs {
		dev := &g.devs[d]
		sat := 0
		if dev.prof.SLO > 0 && dev.prof.MaxBatch >= 1 {
			sat = int(g.queueBound(dev) * 1000 / dev.prof.SLO)
			if sat > 10000 {
				sat = 10000
			}
		}
		st.Devices = append(st.Devices, DeviceOverload{
			Device:     d,
			SatMilli:   sat,
			QueueDepth: dev.depth,
			Pressured:  dev.pressured,
		})
	}
	for f := range g.fams {
		fam := &g.fams[f]
		if fam.level > 0 {
			st.Episodes = append(st.Episodes, Episode{
				Family: f,
				ID:     fam.episode,
				Level:  fam.level,
				Since:  fam.lastStep,
				Reason: "slo_burn",
			})
		}
	}
	return st
}

// Level returns family f's current degradation level (0 = routing follows
// the plan).
func (g *Guard) Level(f int) int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f < 0 || f >= len(g.fams) {
		return 0
	}
	return g.fams[f].level
}

// EpisodeID returns the id of family f's active degradation episode (0 when
// routing follows the plan). Engines stamp it onto enqueue trace events.
func (g *Guard) EpisodeID(f int) int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f < 0 || f >= len(g.fams) {
		return 0
	}
	return g.fams[f].episode
}
