package overload

import (
	"testing"
	"time"
)

func benchGuard() *Guard {
	g := New(Config{Enabled: true}, 2, 4)
	g.SetPlan(0, []DeviceProfile{
		{Family: 0, Accuracy: 80, MaxBatch: 8, Lat1: 10 * time.Millisecond, LatMax: 40 * time.Millisecond, SLO: 100 * time.Millisecond},
		{Family: 0, Accuracy: 70, MaxBatch: 16, Lat1: 5 * time.Millisecond, LatMax: 30 * time.Millisecond, SLO: 100 * time.Millisecond},
		{Family: 1, Accuracy: 90, MaxBatch: 4, Lat1: 20 * time.Millisecond, LatMax: 50 * time.Millisecond, SLO: 200 * time.Millisecond},
		{Family: -1},
	})
	g.NoteDepth(0, 12)
	g.NoteDepth(1, 3)
	return g
}

// BenchmarkAdmissionDisabled measures the admission check through a nil
// guard — the path every run with overload protection off takes. The guard
// must be ~free when disabled, so this is the CI-gated number.
func BenchmarkAdmissionDisabled(b *testing.B) {
	var g *Guard
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Admit(time.Duration(i), 0, time.Duration(i)+100*time.Millisecond)
	}
}

// BenchmarkAdmissionEnabled measures the live admission bound (mutex + the
// affine queue-delay arithmetic).
func BenchmarkAdmissionEnabled(b *testing.B) {
	g := benchGuard()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Admit(time.Duration(i), 0, time.Duration(i)+100*time.Millisecond)
	}
}

// BenchmarkSaturationSignalDisabled measures the per-device saturation
// signal through a nil guard (sampled on every tsdb tick, so the disabled
// path must stay negligible).
func BenchmarkSaturationSignalDisabled(b *testing.B) {
	var g *Guard
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.DeviceSignal(i & 3)
	}
}

// BenchmarkSaturationSignalEnabled measures the live saturation signal.
func BenchmarkSaturationSignalEnabled(b *testing.B) {
	g := benchGuard()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.DeviceSignal(i & 3)
	}
}

// BenchmarkBannedEnabled measures the router-side exclusion predicate, the
// per-candidate cost PickExcluding pays when the guard is on.
func BenchmarkBannedEnabled(b *testing.B) {
	g := benchGuard()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Banned(0, i&3)
	}
}
