package flightrec_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/flightrec"
	"proteus/internal/models"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
	"proteus/internal/tsdb"
)

// burnRun drives a deliberately overloaded small cluster (the recipe the
// report package's end-to-end tests use) with the flight recorder attached,
// so the SLO monitor enters a burn episode and triggers incident bundles.
func burnRun(t *testing.T, dir string) *flightrec.Recorder {
	t.Helper()
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	if len(fams) != 2 {
		t.Fatal("families missing from zoo")
	}
	rec := tsdb.NewRecorder(tsdb.Config{
		SampleInterval: time.Second,
		SLO: tsdb.SLOConfig{
			Target:      0.01,
			BurnRate:    2,
			ShortWindow: 5 * time.Second,
			LongWindow:  30 * time.Second,
		},
	})
	flight := flightrec.New(flightrec.Config{Dir: dir})
	sys, err := core.NewSystem(core.Config{
		Cluster:  cluster.ScaledTestbed(4),
		Families: fams,
		Allocator: allocator.NewMILP(&allocator.MILPOptions{
			TimeLimit: 200 * time.Millisecond, RelGap: 0.01,
		}),
		Seed:      7,
		TSDB:      rec,
		Tracer:    telemetry.NewTracer(0),
		Telemetry: telemetry.NewRegistry(),
		Flight:    flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	per := []float64{300, 300} // ~5x what 4 devices can absorb
	if _, err := sys.Run(trace.NewFlat(models.FamilyNames(fams), per, 90)); err != nil {
		t.Fatal(err)
	}
	if err := flight.WriteError(); err != nil {
		t.Fatalf("bundle write error: %v", err)
	}
	return flight
}

// TestSLOBurnProducesBundle asserts the tentpole end to end: an overloaded
// run trips the burn monitor, the flight recorder snapshots an incident
// bundle, and the bundle carries the phase decomposition and the captured
// controller plan records.
func TestSLOBurnProducesBundle(t *testing.T) {
	dir := t.TempDir()
	flight := burnRun(t, dir)

	bundles := flight.Incidents()
	if len(bundles) == 0 {
		t.Fatal("overloaded run triggered no incident bundles")
	}
	var burn *flightrec.Bundle
	for _, b := range bundles {
		if b.Reason == "slo_burn" {
			burn = b
			break
		}
	}
	if burn == nil {
		t.Fatalf("no slo_burn bundle among %d incidents", len(bundles))
	}
	if burn.Family < 0 {
		t.Errorf("burn bundle has no family: %+v", burn.Family)
	}
	if !strings.Contains(burn.Detail, "short=") || !strings.Contains(burn.Detail, "long=") {
		t.Errorf("burn detail %q missing burn rates", burn.Detail)
	}
	if len(burn.TraceEvents) == 0 {
		t.Error("burn bundle has no trace events")
	}
	if len(burn.Plans) == 0 {
		t.Error("burn bundle captured no plan records")
	}
	for _, p := range burn.Plans {
		if p.SolveTime != 0 || p.Stats.SolverTime != 0 {
			t.Fatalf("solver wall time leaked into bundle: %+v", p)
		}
	}

	// A burn starting mid-run happens after at least one sampling tick, so
	// the rings must hold samples, counters and the phase decomposition.
	// (The first bundle of a run can beat the first tick; slo_burn cannot,
	// because burns are evaluated on the sampling cadence.)
	if len(burn.Samples) == 0 {
		t.Error("burn bundle has no device samples")
	}
	if len(burn.Counters) == 0 {
		t.Error("burn bundle has no counter snapshots")
	}
	if len(burn.Phases) == 0 {
		t.Fatal("burn bundle has no phase decomposition")
	}
	phases := map[string]bool{}
	var exec *tsdb.PhaseStat
	for i, ps := range burn.Phases {
		phases[ps.Phase] = true
		if ps.Scope == "family" && ps.Index == burn.Family && ps.Phase == "exec" {
			exec = &burn.Phases[i]
		}
	}
	for _, want := range []string{"admission", "queue", "batch_form", "exec"} {
		if !phases[want] {
			t.Errorf("phase %q missing from bundle decomposition", want)
		}
	}
	if exec == nil {
		t.Fatal("no exec histogram for the burning family")
	}
	if exec.Count == 0 || exec.MeanUS <= 0 || exec.P95US < exec.P50US || exec.MaxUS < exec.P99US {
		t.Errorf("implausible exec histogram: %+v", *exec)
	}

	// Every retained bundle also landed on disk.
	for _, b := range bundles {
		if _, err := os.Stat(filepath.Join(dir, b.ID+".json")); err != nil {
			t.Errorf("bundle %s not on disk: %v", b.ID, err)
		}
	}
}

// TestSameSeedBundlesByteIdentical runs the same overloaded scenario twice
// and diffs every bundle file byte for byte.
func TestSameSeedBundlesByteIdentical(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	f1 := burnRun(t, dir1)
	f2 := burnRun(t, dir2)

	b1, b2 := f1.Incidents(), f2.Incidents()
	if len(b1) == 0 || len(b1) != len(b2) {
		t.Fatalf("incident counts differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i].ID != b2[i].ID {
			t.Fatalf("bundle %d IDs differ: %s vs %s", i, b1[i].ID, b2[i].ID)
		}
		raw1, err := os.ReadFile(filepath.Join(dir1, b1[i].ID+".json"))
		if err != nil {
			t.Fatal(err)
		}
		raw2, err := os.ReadFile(filepath.Join(dir2, b2[i].ID+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw1, raw2) {
			t.Errorf("same-seed bundle %s diverged (%d vs %d bytes)", b1[i].ID, len(raw1), len(raw2))
		}
	}
}
