// Package flightrec is the black-box flight recorder: bounded rings of
// recent observability state (trace events, counter snapshots, device
// time-series samples, SLO burn transitions, solver audit records, and —
// in live mode — process runtime stats) that are continuously refreshed on
// the engine's sampling tick and atomically snapshotted into an incident
// bundle when something goes wrong. Triggers are SLO burn starts, overload
// episodes, allocator fallbacks, device failures, and manual requests; the
// bundle preserves the state *leading up to* the trigger, which is exactly
// what a post-hoc trace no longer has.
//
// Like the rest of the observability stack, a nil *Recorder turns every
// method into a ~1ns no-op, timestamps are supplied by the hosting engine
// (virtual clock in the simulator, wall-clock offsets in live serving), and
// bundle JSON is byte-deterministic for same-seed simulator runs: solver
// wall times are zeroed on capture and nondeterministic runtime stats are
// collected only when Config.Live is set. pprof captures (which need a real
// clock) live in the serving layer, outside this package.
//
// Locking: the recorder's mutex is a leaf. Tick and Trigger read the
// sources (tracer, registry, tsdb recorder, controller) *before* taking it,
// which keeps Trigger safe to call from the tsdb burn callback (which runs
// under the tsdb recorder's lock) without ordering cycles.
package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"proteus/internal/buildinfo"
	"proteus/internal/controlplane"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// Config bounds the recorder's rings and selects live-mode extras.
type Config struct {
	// TraceEvents is the maximum number of tracer events copied into a
	// bundle (the newest are kept). Default 4096.
	TraceEvents int
	// CounterSnaps / RuntimeSnaps / Samples / Burns bound the respective
	// rings. Defaults 64, 64, 2048, 256.
	CounterSnaps int
	RuntimeSnaps int
	Samples      int
	Burns        int
	// Plans is the maximum number of controller audit records copied into a
	// bundle (the newest are kept). Default 32.
	Plans int
	// MaxIncidents bounds the in-memory bundle log served by
	// /debug/incidents. Default 16.
	MaxIncidents int
	// Live enables nondeterministic runtime sampling (heap, GC pauses,
	// goroutine count). Leave false in the simulator so same-seed runs emit
	// byte-identical bundles.
	Live bool
	// Dir, when non-empty, receives one <bundle-id>.json file per trigger.
	Dir string
}

func (c Config) withDefaults() Config {
	if c.TraceEvents <= 0 {
		c.TraceEvents = 4096
	}
	if c.CounterSnaps <= 0 {
		c.CounterSnaps = 64
	}
	if c.RuntimeSnaps <= 0 {
		c.RuntimeSnaps = 64
	}
	if c.Samples <= 0 {
		c.Samples = 2048
	}
	if c.Burns <= 0 {
		c.Burns = 256
	}
	if c.Plans <= 0 {
		c.Plans = 32
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 16
	}
	return c
}

// Sources are the observability components the recorder snapshots. Any of
// them may be nil/zero; the corresponding bundle sections stay empty.
type Sources struct {
	Tracer   *telemetry.Tracer
	Registry *telemetry.Registry
	TSDB     *tsdb.Recorder
	// Plans returns the controller's audit log (controlplane.Controller's
	// History method). Must be safe to call from any goroutine.
	Plans func() []controlplane.PlanRecord
}

// Recorder is the flight recorder. A nil *Recorder no-ops every method.
// Tick is intended to be driven from the engine's single sampling loop;
// Trigger may race Tick and other Triggers freely — each trigger snapshots
// under the recorder's lock, so concurrent incidents yield two complete,
// non-interleaved bundles.
type Recorder struct {
	cfg Config

	mu        sync.Mutex
	src       Sources
	seq       int
	sampleCur int
	burnCur   int
	counters  []CounterSnap
	samples   []tsdb.Sample
	burns     []tsdb.BurnEvent
	phases    []tsdb.PhaseStat
	runtime   []RuntimeSnap
	incidents []*Bundle
	writeErr  error
}

// New returns a flight recorder with defaults applied. The hosting engine
// connects it to its observability components via Init at assembly time.
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults()}
}

// Init installs the snapshot sources and resets all rings, so a recorder
// serves exactly one run. Called once by the hosting engine.
func (r *Recorder) Init(src Sources) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.src = src
	r.seq = 0
	r.sampleCur, r.burnCur = 0, 0
	r.counters, r.samples, r.burns, r.phases, r.runtime = nil, nil, nil, nil, nil
	r.incidents = nil
	r.writeErr = nil
}

// Dir returns the configured bundle output directory ("" when bundles are
// kept in memory only).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.cfg.Dir
}

// Live reports whether nondeterministic runtime sampling is enabled.
func (r *Recorder) Live() bool {
	if r == nil {
		return false
	}
	return r.cfg.Live
}

// appendBounded appends v to buf keeping at most max elements, dropping the
// oldest first.
func appendBounded[T any](buf []T, v T, max int) []T {
	buf = append(buf, v)
	if over := len(buf) - max; over > 0 {
		buf = append(buf[:0], buf[over:]...)
	}
	return buf
}

// Tick refreshes the rings from the sources: new tsdb samples and burn
// transitions since the last tick (via cursors, so each tick pays only for
// what is new), one counter snapshot, the current phase-decomposition
// summary, and — live mode only — one runtime snapshot. Rides the engine's
// existing tsdb sampling cadence; call it after Recorder.Sample so the tick
// sees the fresh point.
func (r *Recorder) Tick(now time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	src := r.src
	sampleCur, burnCur := r.sampleCur, r.burnCur
	r.mu.Unlock()

	// Source reads happen outside r.mu: each source takes its own lock and
	// r.mu must stay a leaf (Trigger is reachable from the tsdb burn
	// callback, which already holds the tsdb recorder's lock).
	samples, sampleCur := src.TSDB.SamplesSince(sampleCur)
	burns, burnCur := src.TSDB.BurnsSince(burnCur)
	phases := src.TSDB.PhaseStats()
	var metrics []telemetry.Metric
	if src.Registry != nil {
		metrics = src.Registry.Snapshot()
	}
	var rt *RuntimeSnap
	if r.cfg.Live {
		rt = readRuntime(now)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if sampleCur > r.sampleCur {
		r.sampleCur = sampleCur
	}
	if burnCur > r.burnCur {
		r.burnCur = burnCur
	}
	for _, s := range samples {
		r.samples = appendBounded(r.samples, s, r.cfg.Samples)
	}
	for _, b := range burns {
		r.burns = appendBounded(r.burns, b, r.cfg.Burns)
	}
	if phases != nil {
		r.phases = phases
	}
	if metrics != nil {
		r.counters = appendBounded(r.counters, CounterSnap{AtNS: int64(now), Metrics: metrics}, r.cfg.CounterSnaps)
	}
	if rt != nil {
		r.runtime = appendBounded(r.runtime, *rt, r.cfg.RuntimeSnaps)
	}
}

// Trigger snapshots the rings — plus the tracer's event ring and the
// controller's newest audit records, gathered at trigger time — into a new
// incident bundle, appends it to the in-memory incident log, and (when
// Config.Dir is set) writes it to <Dir>/<bundle-id>.json. Reason is one of
// "slo_burn", "overload", "alloc_fallback", "device_failure", "manual";
// family/device are -1 when not applicable.
//
// Safe from any goroutine, including the tsdb burn callback: Trigger never
// calls back into the tsdb recorder, so ring contents reflect the last
// tick while the trace ring is current to the trigger instant.
func (r *Recorder) Trigger(now time.Duration, reason, detail string, family, device int) *Bundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	src := r.src
	r.mu.Unlock()

	var events []telemetry.Event
	if src.Tracer != nil {
		events = src.Tracer.Events()
	}
	var plans []controlplane.PlanRecord
	if src.Plans != nil {
		plans = src.Plans()
	}
	if n := r.cfg.TraceEvents; len(events) > n {
		events = events[len(events)-n:]
	}
	if n := r.cfg.Plans; len(plans) > n {
		plans = plans[len(plans)-n:]
	}

	r.mu.Lock()
	r.seq++
	b := &Bundle{
		ID:     fmt.Sprintf("incident-%06d-%s", r.seq, reason),
		Seq:    r.seq,
		AtNS:   int64(now),
		Reason: reason,
		Detail: detail,
		Family: family,
		Device: device,
		Build:  buildinfo.Get(),
	}
	b.TraceEvents = make([]TraceEvent, len(events))
	for i, ev := range events {
		b.TraceEvents[i] = toTraceEvent(ev)
	}
	b.Counters = append([]CounterSnap(nil), r.counters...)
	b.Samples = append([]tsdb.Sample(nil), r.samples...)
	b.Burns = append([]tsdb.BurnEvent(nil), r.burns...)
	b.Phases = append([]tsdb.PhaseStat(nil), r.phases...)
	// Solver wall times are real elapsed time even in the simulator, and a
	// budgeted solve's proof progress is timing-dependent; sanitize the
	// copy so same-seed bundles stay byte-identical (every serialization
	// surface shares this helper).
	b.Plans = controlplane.SanitizePlans(append([]controlplane.PlanRecord(nil), plans...))
	b.Runtime = append([]RuntimeSnap(nil), r.runtime...)
	r.incidents = appendBounded(r.incidents, b, r.cfg.MaxIncidents)
	dir := r.cfg.Dir
	r.mu.Unlock()

	if dir != "" {
		if err := b.WriteFile(filepath.Join(dir, b.ID+".json")); err != nil {
			r.mu.Lock()
			r.writeErr = err
			r.mu.Unlock()
		}
	}
	return b
}

// Incidents returns the in-memory incident log, oldest first.
func (r *Recorder) Incidents() []*Bundle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Bundle(nil), r.incidents...)
}

// WriteError returns the most recent bundle-file write failure, if any.
// Disk trouble must not break the data path, so Trigger records the error
// here instead of returning it.
func (r *Recorder) WriteError() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writeErr
}

// readRuntime samples process runtime state. Only called in live mode —
// heap and GC figures depend on allocator history, never on the seed.
func readRuntime(now time.Duration) *RuntimeSnap {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &RuntimeSnap{
		AtNS:           int64(now),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCPauseTotalNS: ms.PauseTotalNs,
		NumGC:          ms.NumGC,
		Goroutines:     runtime.NumGoroutine(),
	}
}

// ReadBundle decodes one incident bundle from r.
func ReadBundle(rd io.Reader) (*Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("decode incident bundle: %w", err)
	}
	return &b, nil
}

// ReadBundleFile decodes the incident bundle at path.
func ReadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f)
}
