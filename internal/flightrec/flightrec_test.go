package flightrec

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"proteus/internal/controlplane"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// fixture assembles a recorder wired to real observability sources with some
// state already in them.
func fixture(cfg Config) (*Recorder, Sources) {
	tracer := telemetry.NewTracer(1 << 10)
	registry := telemetry.NewRegistry()
	registry.Counter("queries_arrived_total").Add(5)
	registry.Gauge("devices_up").Set(4)
	rec := tsdb.NewRecorder(tsdb.Config{SampleInterval: time.Second})
	rec.Init(2, nil)
	plans := []controlplane.PlanRecord{
		{At: 0, Trigger: "initial", Stage: "primary", Solver: "milp", SolveTime: 123},
		{At: 10 * time.Second, Trigger: "periodic", Stage: "primary", Solver: "milp", SolveTime: 456},
	}
	src := Sources{
		Tracer:   tracer,
		Registry: registry,
		TSDB:     rec,
		Plans:    func() []controlplane.PlanRecord { return plans },
	}
	r := New(cfg)
	r.Init(src)
	return r, src
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Init(Sources{})
	r.Tick(time.Second)
	if b := r.Trigger(time.Second, "manual", "", -1, -1); b != nil {
		t.Fatal("nil recorder returned a bundle")
	}
	if r.Incidents() != nil || r.WriteError() != nil || r.Dir() != "" || r.Live() {
		t.Fatal("nil recorder accessors not empty")
	}
}

func TestTriggerCapturesState(t *testing.T) {
	r, src := fixture(Config{})
	src.Tracer.Record(0, telemetry.EvArrival, 1, 0, -1, -1)
	src.Tracer.Record(time.Millisecond, telemetry.EvDone, 1, 0, 2, 4)
	src.TSDB.Sample(time.Second, []tsdb.DeviceState{{Up: true}, {Up: true, QueueDepth: 7}})
	src.TSDB.RecordPhases(0, 1, tsdb.PhaseDurations{Queue: time.Millisecond, Exec: 2 * time.Millisecond})
	r.Tick(time.Second)

	b := r.Trigger(2*time.Second, "slo_burn", "family=0 short=3.00 long=2.50", 0, -1)
	if b == nil {
		t.Fatal("no bundle")
	}
	if b.ID != "incident-000001-slo_burn" || b.Seq != 1 {
		t.Fatalf("bundle identity %q seq %d", b.ID, b.Seq)
	}
	if b.AtNS != int64(2*time.Second) || b.Reason != "slo_burn" || b.Family != 0 || b.Device != -1 {
		t.Fatalf("bundle header %+v", b)
	}
	if len(b.TraceEvents) != 2 || b.TraceEvents[0].Kind != "arrival" || b.TraceEvents[1].Batch != 4 {
		t.Fatalf("trace events %+v", b.TraceEvents)
	}
	if len(b.Samples) != 2 || b.Samples[1].QueueDepth != 7 {
		t.Fatalf("samples %+v", b.Samples)
	}
	if len(b.Counters) != 1 || len(b.Counters[0].Metrics) == 0 {
		t.Fatalf("counters %+v", b.Counters)
	}
	if len(b.Phases) == 0 {
		t.Fatal("phases missing from bundle")
	}
	if len(b.Plans) != 2 {
		t.Fatalf("plans %+v", b.Plans)
	}
	for _, p := range b.Plans {
		if p.SolveTime != 0 || p.Stats.SolverTime != 0 {
			t.Fatalf("solver wall time not zeroed: %+v", p)
		}
	}
	if len(b.Runtime) != 0 {
		t.Fatal("runtime snaps present without Live mode")
	}
	if got := r.Incidents(); len(got) != 1 || got[0].ID != b.ID {
		t.Fatalf("incident log %+v", got)
	}
}

func TestRingWrap(t *testing.T) {
	r, src := fixture(Config{TraceEvents: 3, CounterSnaps: 2, Samples: 3, Plans: 1, MaxIncidents: 2})
	for i := 0; i < 10; i++ {
		src.Tracer.Record(time.Duration(i)*time.Millisecond, telemetry.EvArrival, uint64(i), 0, -1, -1)
		src.TSDB.Sample(time.Duration(i)*time.Second, []tsdb.DeviceState{{Up: true, QueueDepth: i}})
		r.Tick(time.Duration(i) * time.Second)
	}
	b := r.Trigger(time.Minute, "manual", "", -1, -1)
	if len(b.TraceEvents) != 3 || b.TraceEvents[2].Query != 9 {
		t.Fatalf("trace ring not bounded to newest 3: %+v", b.TraceEvents)
	}
	if len(b.Counters) != 2 {
		t.Fatalf("counter ring %d, want 2", len(b.Counters))
	}
	if len(b.Samples) != 3 || b.Samples[2].QueueDepth != 9 {
		t.Fatalf("sample ring not bounded to newest 3: %+v", b.Samples)
	}
	if len(b.Plans) != 1 || b.Plans[0].Trigger != "periodic" {
		t.Fatalf("plan ring not bounded to newest 1: %+v", b.Plans)
	}
	// Incident log keeps only the newest MaxIncidents bundles.
	r.Trigger(time.Minute, "manual", "", -1, -1)
	r.Trigger(time.Minute, "manual", "", -1, -1)
	got := r.Incidents()
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("incident log after wrap: %d bundles, seqs %d/%d", len(got), got[0].Seq, got[1].Seq)
	}
}

// TestTriggerStorm races concurrent triggers against ticks and asserts every
// bundle is complete and non-interleaved: unique sequence numbers, matching
// IDs, and self-consistent sections. Run with -race.
func TestTriggerStorm(t *testing.T) {
	dir := t.TempDir()
	r, src := fixture(Config{Dir: dir})
	src.TSDB.Sample(0, []tsdb.DeviceState{{Up: true}})
	r.Tick(0)

	const n = 32
	var wg sync.WaitGroup
	bundles := make([]*Bundle, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src.Tracer.Record(time.Duration(i), telemetry.EvArrival, uint64(i), 0, -1, -1)
			if i%4 == 0 {
				r.Tick(time.Duration(i) * time.Second)
			}
			bundles[i] = r.Trigger(time.Duration(i)*time.Second, "manual", fmt.Sprintf("storm %d", i), -1, -1)
		}(i)
	}
	wg.Wait()

	seen := map[int]bool{}
	for i, b := range bundles {
		if b == nil {
			t.Fatalf("trigger %d returned nil", i)
		}
		if seen[b.Seq] {
			t.Fatalf("duplicate bundle seq %d", b.Seq)
		}
		seen[b.Seq] = true
		if want := fmt.Sprintf("incident-%06d-manual", b.Seq); b.ID != want {
			t.Fatalf("bundle ID %q does not match seq %d", b.ID, b.Seq)
		}
		// Each bundle must parse back from its file identically — the atomic
		// rename means no reader ever sees a torn write.
		onDisk, err := ReadBundleFile(filepath.Join(dir, b.ID+".json"))
		if err != nil {
			t.Fatalf("bundle %s not readable: %v", b.ID, err)
		}
		var a, c bytes.Buffer
		if err := b.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := onDisk.WriteJSON(&c); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), c.Bytes()) {
			t.Fatalf("bundle %s differs on disk", b.ID)
		}
	}
	if err := r.WriteError(); err != nil {
		t.Fatalf("write error: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != n {
		t.Fatalf("%d bundle files, want %d", len(files), n)
	}
}

func TestBundleByteDeterminism(t *testing.T) {
	run := func() []byte {
		r, src := fixture(Config{})
		src.Tracer.Record(0, telemetry.EvArrival, 1, 0, -1, -1)
		src.TSDB.Sample(time.Second, []tsdb.DeviceState{{Up: true, QueueDepth: 2}})
		src.TSDB.RecordPhases(0, 0, tsdb.PhaseDurations{Exec: time.Millisecond})
		r.Tick(time.Second)
		b := r.Trigger(2*time.Second, "slo_burn", "family=0 short=3.00 long=2.50", 0, -1)
		var buf bytes.Buffer
		if err := b.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different bundle bytes (%d vs %d)", len(a), len(b))
	}
}

func TestWriteErrorSurfaced(t *testing.T) {
	r, _ := fixture(Config{Dir: filepath.Join(string(os.PathSeparator), "nonexistent", "proteus-test")})
	r.Trigger(0, "manual", "", -1, -1)
	if r.WriteError() == nil {
		t.Fatal("unwritable bundle dir produced no write error")
	}
	// The in-memory log still has the bundle: disk trouble must not lose it.
	if len(r.Incidents()) != 1 {
		t.Fatal("bundle lost on write failure")
	}
}

func TestLiveModeRuntimeSnaps(t *testing.T) {
	r, _ := fixture(Config{Live: true})
	r.Tick(time.Second)
	b := r.Trigger(2*time.Second, "manual", "", -1, -1)
	if len(b.Runtime) != 1 {
		t.Fatalf("runtime snaps = %d, want 1", len(b.Runtime))
	}
	if b.Runtime[0].HeapAllocBytes == 0 || b.Runtime[0].Goroutines == 0 {
		t.Fatalf("empty runtime snap: %+v", b.Runtime[0])
	}
}
