package flightrec

import (
	"encoding/json"
	"io"
	"os"

	"proteus/internal/buildinfo"
	"proteus/internal/controlplane"
	"proteus/internal/telemetry"
	"proteus/internal/tsdb"
)

// TraceEvent mirrors telemetry.Event with JSON tags matching the tracer's
// JSONL export, so bundles and trace files read the same way.
type TraceEvent struct {
	AtUS   int64  `json:"at_us"`
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Query  uint64 `json:"query"`
	Family int32  `json:"family"`
	Device int32  `json:"device"`
	Batch  int32  `json:"batch"`
	// Causal attribution stamps: the control-plan sequence number and
	// overload episode id in force when the event was recorded, and the
	// drop/requeue cause (omitted when zero, like the JSONL export).
	Plan    int32  `json:"plan,omitempty"`
	Episode int32  `json:"episode,omitempty"`
	Cause   string `json:"cause,omitempty"`
}

func toTraceEvent(ev telemetry.Event) TraceEvent {
	te := TraceEvent{
		AtUS:    ev.At.Microseconds(),
		Seq:     ev.Seq,
		Kind:    ev.Kind.String(),
		Query:   ev.Query,
		Family:  ev.Family,
		Device:  ev.Device,
		Batch:   ev.Batch,
		Plan:    ev.Plan,
		Episode: ev.Episode,
	}
	if ev.Cause != telemetry.CauseNone {
		te.Cause = ev.Cause.String()
	}
	return te
}

// CounterSnap is one sampling tick's counter-registry snapshot.
type CounterSnap struct {
	AtNS    int64              `json:"at_ns"`
	Metrics []telemetry.Metric `json:"metrics"`
}

// RuntimeSnap is one sampling tick's process runtime state (live mode
// only — absent from simulator bundles so they stay deterministic).
type RuntimeSnap struct {
	AtNS           int64  `json:"at_ns"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	NumGC          uint32 `json:"num_gc"`
	Goroutines     int    `json:"goroutines"`
}

// Bundle is one incident's atomic snapshot of the flight recorder's rings.
// Field order is the JSON order; every section is a copy, so a bundle never
// shares state with the recorder that produced it.
type Bundle struct {
	// ID names the bundle (and its file): "incident-<seq>-<reason>".
	ID string `json:"id"`
	// Seq is the 1-based trigger sequence number within the run.
	Seq int `json:"seq"`
	// AtNS is the trigger time: virtual in the simulator, duration since
	// server start in live serving.
	AtNS int64 `json:"at_ns"`
	// Reason is "slo_burn", "overload", "alloc_fallback", "device_failure"
	// or "manual"; Detail carries trigger-specific context.
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	// Family / Device locate the trigger when applicable, else -1.
	Family int `json:"family"`
	Device int `json:"device"`

	// TraceEvents is the tail of the tracer's ring at trigger time.
	TraceEvents []TraceEvent `json:"trace_events,omitempty"`
	// Counters are the per-tick registry snapshots leading up to the
	// trigger, oldest first.
	Counters []CounterSnap `json:"counters,omitempty"`
	// Samples / Burns are the device time-series and SLO burn transitions
	// captured through the last tick before the trigger.
	Samples []tsdb.Sample    `json:"samples,omitempty"`
	Burns   []tsdb.BurnEvent `json:"burns,omitempty"`
	// Phases is the per-family / per-device latency decomposition summary
	// as of the last tick.
	Phases []tsdb.PhaseStat `json:"phases,omitempty"`
	// Plans are the controller's newest audit records at trigger time, with
	// solver wall times zeroed for determinism.
	Plans []controlplane.PlanRecord `json:"plans,omitempty"`
	// Runtime holds live-mode process snapshots (empty in the simulator).
	Runtime []RuntimeSnap `json:"runtime,omitempty"`
	// Build identifies the binary that produced the bundle, so incidents
	// can be joined back to a commit. Identical across same-seed runs of
	// one binary, keeping bundles byte-deterministic.
	Build buildinfo.Info `json:"build"`
}

// WriteJSON writes the bundle as indented JSON. Byte-deterministic: struct
// fields serialize in declaration order and map keys sorted.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the bundle to path via a unique temp file renamed into
// place, so concurrent triggers and readers never see a torn bundle.
func (b *Bundle) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
