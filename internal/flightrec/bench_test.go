package flightrec

import (
	"testing"
	"time"

	"proteus/internal/tsdb"
)

// BenchmarkFlightTickDisabled measures the sampling-loop probe when the
// flight recorder is off (nil recorder) — the path every run without
// -incidents takes. The ISSUE budget is ≤5ns; a nil-receiver check is ~1ns.
func BenchmarkFlightTickDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Tick(time.Duration(i))
	}
}

// BenchmarkFlightTriggerDisabled measures a trigger call site (burn start,
// device failure, ...) with the recorder off.
func BenchmarkFlightTriggerDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Trigger(time.Duration(i), "slo_burn", "", 0, -1)
	}
}

// BenchmarkPhaseRecordDisabled measures the per-query phase-decomposition
// probe with no tsdb recorder — the completion-path cost added by this
// feature when observability is off.
func BenchmarkPhaseRecordDisabled(b *testing.B) {
	var r *tsdb.Recorder
	pd := tsdb.PhaseDurations{Queue: time.Millisecond, Exec: time.Millisecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordPhases(0, 1, pd)
	}
}

// BenchmarkPhaseRecordEnabled measures the live phase-recording cost: one
// mutex acquisition plus five histogram inserts on each of two scopes.
func BenchmarkPhaseRecordEnabled(b *testing.B) {
	r := tsdb.NewRecorder(tsdb.Config{})
	r.Init(1, nil)
	pd := tsdb.PhaseDurations{Queue: time.Millisecond, Exec: time.Millisecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordPhases(0, 1, pd)
	}
}

// BenchmarkFlightTickEnabled measures a live tick against real sources with
// nothing new to collect — the steady-state per-tick floor.
func BenchmarkFlightTickEnabled(b *testing.B) {
	r, _ := fixture(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Tick(time.Duration(i))
	}
}
