package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// EventKind identifies a point in a query's lifecycle.
type EventKind uint8

const (
	// EvArrival: query entered the system.
	EvArrival EventKind = iota
	// EvRoute: router assigned the query to a device.
	EvRoute
	// EvEnqueue: query joined a device queue.
	EvEnqueue
	// EvBatchFormed: batching policy committed the query to a batch.
	EvBatchFormed
	// EvExecStart: the batch containing the query began executing.
	EvExecStart
	// EvDone: query completed within its SLO.
	EvDone
	// EvLate: query completed after its deadline.
	EvLate
	// EvDropped: query was shed (no route, admission control, expiry, or
	// retry budget exhausted).
	EvDropped
	// EvRequeued: query was stranded by a device failure and re-entered
	// routing.
	EvRequeued
	// EvRetried: stranded query was granted a retry and re-routed.
	EvRetried
	// EvSLOBurnStart: a family's SLO burn rate exceeded the alerting
	// threshold in both monitor windows (family in the Family field; the
	// query ID is 0 — burn events are per family, not per query).
	EvSLOBurnStart
	// EvSLOBurnEnd: the burn episode ended.
	EvSLOBurnEnd
	// EvDegradeStart: the overload guard opened or escalated an emergency
	// accuracy-degradation episode (family in the Family field, the new
	// degradation level in the Batch field; query ID 0 — like burn events,
	// degradations are per family).
	EvDegradeStart
	// EvDegradeEnd: the overload guard restored the planned routing.
	EvDegradeEnd

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvArrival:      "arrival",
	EvRoute:        "route",
	EvEnqueue:      "enqueue",
	EvBatchFormed:  "batch_formed",
	EvExecStart:    "exec_start",
	EvDone:         "done",
	EvLate:         "late",
	EvDropped:      "dropped",
	EvRequeued:     "requeued",
	EvRetried:      "retried",
	EvSLOBurnStart: "slo_burn_start",
	EvSLOBurnEnd:   "slo_burn_end",
	EvDegradeStart: "degrade_start",
	EvDegradeEnd:   "degrade_end",
}

// String returns the stable wire name of the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// KindByName maps a wire name back to its EventKind. ok is false for
// unknown names.
func KindByName(name string) (EventKind, bool) {
	for k, n := range eventKindNames {
		if n == name {
			return EventKind(k), true
		}
	}
	return 0, false
}

// Cause classifies why a query was dropped, requeued, or retried. It rides
// on EvDropped / EvRequeued / EvRetried events so latency attribution can
// tell a failure re-route from an admission shed without re-deriving engine
// state.
type Cause uint8

const (
	// CauseNone: the event needs no cause (the zero value).
	CauseNone Cause = iota
	// CauseDeviceFailure: the query was stranded in a failed device's queue
	// or mailbox.
	CauseDeviceFailure
	// CauseStaleRoute: the query was routed to a device that was already
	// down (the routing table lagged the failure).
	CauseStaleRoute
	// CauseMidflight: the device died while the query's batch was executing
	// (live mode only; the simulator completes in-flight batches).
	CauseMidflight
	// CauseShedAdmission: deadline admission control shed the query at
	// routing time.
	CauseShedAdmission
	// CauseNoRoute: no hosted variant / all candidate devices banned.
	CauseNoRoute
	// CauseExpired: the query's deadline passed before it could be served.
	CauseExpired
	// CauseRetryBudget: a stranded query exhausted its retry budget.
	CauseRetryBudget
	// CausePolicyDrop: the batching policy shed the query.
	CausePolicyDrop
	// CauseDraining: the server refused the query during graceful shutdown
	// (live mode only).
	CauseDraining

	numCauses
)

var causeNames = [numCauses]string{
	CauseNone:          "",
	CauseDeviceFailure: "device_failure",
	CauseStaleRoute:    "stale_route",
	CauseMidflight:     "midflight",
	CauseShedAdmission: "shed_admission",
	CauseNoRoute:       "no_route",
	CauseExpired:       "expired",
	CauseRetryBudget:   "retry_budget",
	CausePolicyDrop:    "policy_drop",
	CauseDraining:      "draining",
}

// String returns the stable wire name of the cause ("" for CauseNone).
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// CauseByName maps a wire name back to its Cause; "" maps to CauseNone.
func CauseByName(name string) (Cause, bool) {
	for c, n := range causeNames {
		if n == name {
			return Cause(c), true
		}
	}
	return 0, false
}

// Ctx is the causal context stamped onto an event: which control plan and
// overload episode were active, and — for drop/requeue/retry events — why
// the query left its normal path. The zero Ctx means "no context", so call
// sites without causal information keep using Record unchanged.
type Ctx struct {
	// Plan is the sequence number of the control plan in force (0 when no
	// plan has been applied yet or the engine doesn't track plans).
	Plan int32
	// Episode is the overload guard's emergency-degradation episode id
	// active for the query's family (0 when none).
	Episode int32
	// Cause classifies drop/requeue/retry events (CauseNone otherwise).
	Cause Cause
}

// Event is one timestamped point in a query's lifecycle. At is relative to
// the trace origin: the virtual clock in simulation, time since server
// start in live serving. Device and Batch are -1 when not applicable.
type Event struct {
	At     time.Duration
	Seq    uint64 // global record order, breaks equal-At ties
	Query  uint64
	Kind   EventKind
	Family int32
	Device int32
	Batch  int32
	// Plan, Episode, and Cause are the causal context (see Ctx); all zero
	// for events recorded through Record.
	Plan    int32
	Episode int32
	Cause   Cause
}

// Tracer records lifecycle events into a bounded ring buffer: when more
// than its capacity arrive, the oldest are overwritten (Dropped counts
// them). A nil *Tracer discards all events, so call sites never need a
// guard. Record is safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf index = (next-1) % cap
	// dropCounter, when set, is incremented once per ring-wrap eviction so
	// overflow is visible on /metrics (trace_dropped_total). Counter.Inc is
	// nil-safe, so an unset counter costs nothing extra.
	dropCounter *Counter
}

// DefaultTraceCapacity bounds tracer memory when callers don't choose:
// 1M events ≈ 48 MB.
const DefaultTraceCapacity = 1 << 20

// NewTracer returns a tracer holding the most recent capacity events
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends a lifecycle event with no causal context. No-op on a nil
// tracer.
func (t *Tracer) Record(at time.Duration, kind EventKind, query uint64, family, device, batch int) {
	t.RecordCtx(at, kind, query, family, device, batch, Ctx{})
}

// RecordCtx appends a lifecycle event carrying causal context. No-op on a
// nil tracer. The nil check lives in this thin wrapper so it inlines into
// call sites and the disabled path stays a branch, not a call.
func (t *Tracer) RecordCtx(at time.Duration, kind EventKind, query uint64, family, device, batch int, ctx Ctx) {
	if t == nil {
		return
	}
	t.recordCtx(at, kind, query, family, device, batch, ctx)
}

func (t *Tracer) recordCtx(at time.Duration, kind EventKind, query uint64, family, device, batch int, ctx Ctx) {
	t.mu.Lock()
	ev := Event{
		At:      at,
		Seq:     t.next,
		Query:   query,
		Kind:    kind,
		Family:  int32(family),
		Device:  int32(device),
		Batch:   int32(batch),
		Plan:    ctx.Plan,
		Episode: ctx.Episode,
		Cause:   ctx.Cause,
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = ev
		t.dropCounter.Inc()
	}
	t.next++
	t.mu.Unlock()
}

// SetDropCounter registers the counter incremented on every ring-wrap
// eviction (typically trace_dropped_total from a Registry). No-op on a nil
// tracer.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropCounter = c
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events were overwritten because the ring
// filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next - uint64(len(t.buf))
}

// Events returns the buffered events in record order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	if len(t.buf) < cap(t.buf) || len(t.buf) == 0 {
		copy(out, t.buf)
		return out
	}
	// Ring has wrapped: the oldest event sits at next % cap.
	head := int(t.next % uint64(cap(t.buf)))
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}

// WriteJSONL writes one JSON object per line per event, in record order.
// Fields are emitted in a fixed order via fmt so that identical event
// sequences serialize to identical bytes. Timestamps are nanoseconds so the
// attribution engine's conservation invariant survives a round-trip.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, ev := range t.Events() {
		_, err := fmt.Fprintf(w,
			`{"at_ns":%d,"seq":%d,"kind":%q,"query":%d,"family":%d,"device":%d,"batch":%d,"plan":%d,"episode":%d,"cause":%q}`+"\n",
			ev.At.Nanoseconds(), ev.Seq, ev.Kind.String(), ev.Query, ev.Family, ev.Device, ev.Batch,
			ev.Plan, ev.Episode, ev.Cause.String())
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a trace written by WriteJSONL back into events. Unknown
// kinds or causes fail the parse rather than silently mis-attributing.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var wire struct {
			AtNS    int64  `json:"at_ns"`
			Seq     uint64 `json:"seq"`
			Kind    string `json:"kind"`
			Query   uint64 `json:"query"`
			Family  int32  `json:"family"`
			Device  int32  `json:"device"`
			Batch   int32  `json:"batch"`
			Plan    int32  `json:"plan"`
			Episode int32  `json:"episode"`
			Cause   string `json:"cause"`
		}
		if err := json.Unmarshal([]byte(text), &wire); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		kind, ok := KindByName(wire.Kind)
		if !ok {
			return nil, fmt.Errorf("telemetry: trace line %d: unknown event kind %q", line, wire.Kind)
		}
		cause, ok := CauseByName(wire.Cause)
		if !ok {
			return nil, fmt.Errorf("telemetry: trace line %d: unknown cause %q", line, wire.Cause)
		}
		out = append(out, Event{
			At:      time.Duration(wire.AtNS),
			Seq:     wire.Seq,
			Query:   wire.Query,
			Kind:    kind,
			Family:  wire.Family,
			Device:  wire.Device,
			Batch:   wire.Batch,
			Plan:    wire.Plan,
			Episode: wire.Episode,
			Cause:   cause,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace: %w", err)
	}
	return out, nil
}

// WriteChromeTrace writes the buffered events in Chrome trace_event JSON
// array format (load via chrome://tracing or https://ui.perfetto.dev).
// Each event becomes an instant event ("ph":"i") on pid = device (+1 so
// device -1 maps to pid 0) and tid = family. Output is byte-stable for a
// given event sequence.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	events := t.Events()
	for i, ev := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			`  {"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"query":%d,"seq":%d,"batch":%d,"plan":%d,"episode":%d,"cause":%q}}%s`+"\n",
			ev.Kind.String(), ev.At.Microseconds(), ev.Device+1, ev.Family, ev.Query, ev.Seq, ev.Batch,
			ev.Plan, ev.Episode, ev.Cause.String(), sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
