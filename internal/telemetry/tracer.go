package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind identifies a point in a query's lifecycle.
type EventKind uint8

const (
	// EvArrival: query entered the system.
	EvArrival EventKind = iota
	// EvRoute: router assigned the query to a device.
	EvRoute
	// EvEnqueue: query joined a device queue.
	EvEnqueue
	// EvBatchFormed: batching policy committed the query to a batch.
	EvBatchFormed
	// EvExecStart: the batch containing the query began executing.
	EvExecStart
	// EvDone: query completed within its SLO.
	EvDone
	// EvLate: query completed after its deadline.
	EvLate
	// EvDropped: query was shed (no route, admission control, expiry, or
	// retry budget exhausted).
	EvDropped
	// EvRequeued: query was stranded by a device failure and re-entered
	// routing.
	EvRequeued
	// EvRetried: stranded query was granted a retry and re-routed.
	EvRetried
	// EvSLOBurnStart: a family's SLO burn rate exceeded the alerting
	// threshold in both monitor windows (family in the Family field; the
	// query ID is 0 — burn events are per family, not per query).
	EvSLOBurnStart
	// EvSLOBurnEnd: the burn episode ended.
	EvSLOBurnEnd
	// EvDegradeStart: the overload guard opened or escalated an emergency
	// accuracy-degradation episode (family in the Family field, the new
	// degradation level in the Batch field; query ID 0 — like burn events,
	// degradations are per family).
	EvDegradeStart
	// EvDegradeEnd: the overload guard restored the planned routing.
	EvDegradeEnd

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvArrival:      "arrival",
	EvRoute:        "route",
	EvEnqueue:      "enqueue",
	EvBatchFormed:  "batch_formed",
	EvExecStart:    "exec_start",
	EvDone:         "done",
	EvLate:         "late",
	EvDropped:      "dropped",
	EvRequeued:     "requeued",
	EvRetried:      "retried",
	EvSLOBurnStart: "slo_burn_start",
	EvSLOBurnEnd:   "slo_burn_end",
	EvDegradeStart: "degrade_start",
	EvDegradeEnd:   "degrade_end",
}

// String returns the stable wire name of the event kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one timestamped point in a query's lifecycle. At is relative to
// the trace origin: the virtual clock in simulation, time since server
// start in live serving. Device and Batch are -1 when not applicable.
type Event struct {
	At     time.Duration
	Seq    uint64 // global record order, breaks equal-At ties
	Query  uint64
	Kind   EventKind
	Family int32
	Device int32
	Batch  int32
}

// Tracer records lifecycle events into a bounded ring buffer: when more
// than its capacity arrive, the oldest are overwritten (Dropped counts
// them). A nil *Tracer discards all events, so call sites never need a
// guard. Record is safe for concurrent use.
type Tracer struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf index = (next-1) % cap
}

// DefaultTraceCapacity bounds tracer memory when callers don't choose:
// 1M events ≈ 48 MB.
const DefaultTraceCapacity = 1 << 20

// NewTracer returns a tracer holding the most recent capacity events
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends a lifecycle event. No-op on a nil tracer.
func (t *Tracer) Record(at time.Duration, kind EventKind, query uint64, family, device, batch int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{
		At:     at,
		Seq:    t.next,
		Query:  query,
		Kind:   kind,
		Family: int32(family),
		Device: int32(device),
		Batch:  int32(batch),
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next%uint64(cap(t.buf))] = ev
	}
	t.next++
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events were overwritten because the ring
// filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next - uint64(len(t.buf))
}

// Events returns the buffered events in record order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	if len(t.buf) < cap(t.buf) || len(t.buf) == 0 {
		copy(out, t.buf)
		return out
	}
	// Ring has wrapped: the oldest event sits at next % cap.
	head := int(t.next % uint64(cap(t.buf)))
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}

// WriteJSONL writes one JSON object per line per event, in record order.
// Fields are emitted in a fixed order via fmt so that identical event
// sequences serialize to identical bytes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, ev := range t.Events() {
		_, err := fmt.Fprintf(w,
			`{"at_us":%d,"seq":%d,"kind":%q,"query":%d,"family":%d,"device":%d,"batch":%d}`+"\n",
			ev.At.Microseconds(), ev.Seq, ev.Kind.String(), ev.Query, ev.Family, ev.Device, ev.Batch)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the buffered events in Chrome trace_event JSON
// array format (load via chrome://tracing or https://ui.perfetto.dev).
// Each event becomes an instant event ("ph":"i") on pid = device (+1 so
// device -1 maps to pid 0) and tid = family. Output is byte-stable for a
// given event sequence.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	events := t.Events()
	for i, ev := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			`  {"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{"query":%d,"seq":%d,"batch":%d}}%s`+"\n",
			ev.Kind.String(), ev.At.Microseconds(), ev.Device+1, ev.Family, ev.Query, ev.Seq, ev.Batch, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
