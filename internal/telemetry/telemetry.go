// Package telemetry is the observability substrate of the repo: a bounded
// per-query lifecycle tracer (Chrome trace_event / JSONL export), an atomic
// counters-and-gauges registry with snapshot export, and the pre-resolved
// counter bundles the hot paths increment without any map lookups or
// allocations. Everything is nil-safe: a nil *Tracer, *Registry, *Counter or
// *Gauge turns every operation into a cheap no-op, so telemetry can default
// off with (benchmarked) sub-nanosecond overhead and be switched on per run.
//
// Timestamps are supplied by the caller — the simulator passes its virtual
// clock, the live serving layer passes wall-clock durations since server
// start — so the package itself never reads the wall clock and seeded
// simulator runs export byte-identical traces.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named set of counters and gauges. Registration takes a
// lock; the returned *Counter / *Gauge are then updated lock-free, so the
// hot path never touches the registry map. A nil *Registry hands out nil
// metrics, making every instrumented path a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	// help holds per-registry Prometheus help-text overrides (SetHelp).
	help map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Metric is one (name, value) pair of a registry snapshot.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	// Kind is "counter" or "gauge".
	Kind string `json:"kind"`
}

// Snapshot returns every metric sorted by name. Each value is an atomic
// load; the registry lock only excludes concurrent registration, so the
// snapshot is per-metric consistent (torn multi-metric invariants are
// possible under concurrent writers, exact values are not).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cnames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	gnames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	out := make([]Metric, 0, len(cnames)+len(gnames))
	for _, name := range cnames {
		out = append(out, Metric{Name: name, Value: r.counters[name].Value(), Kind: "counter"})
	}
	for _, name := range gnames {
		out = append(out, Metric{Name: name, Value: r.gauges[name].Value(), Kind: "gauge"})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText writes the snapshot as sorted "name value" lines — the
// /metrics wire format.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusContentType is the content type of the Prometheus text
// exposition format (version 0.0.4) emitted by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// standardHelp documents the canonical metric names registered by the
// counter bundles below; WritePrometheus emits them as # HELP lines.
// Registry.SetHelp overrides or extends this set per registry.
var standardHelp = map[string]string{
	"queries_arrived_total":       "Queries that arrived at the load balancer.",
	"queries_served_total":        "Queries completed within their SLO.",
	"queries_late_total":          "Queries completed after their deadline.",
	"queries_dropped_total":       "Queries dropped (shed, expired, or out of retries).",
	"queries_requeued_total":      "Queries stranded by a device failure and returned to the router.",
	"queries_retried_total":       "Stranded queries re-dispatched to a surviving replica.",
	"batches_executed_total":      "Batches executed across all devices.",
	"batch_queries_total":         "Queries executed inside batches.",
	"model_loads_total":           "Model-variant load events across devices.",
	"batching_execute_total":      "Batching-policy decisions to execute now.",
	"batching_wait_total":         "Batching-policy decisions to wait for a larger batch.",
	"batching_idle_total":         "Batching-policy decisions with nothing to do.",
	"batching_drop_total":         "Queries dropped by batching-policy decision.",
	"devices_up":                  "Devices currently healthy.",
	"plan_demand_scale_milli":     "Demand scale of the live plan, in thousandths.",
	"router_picks_total":          "Queries routed to a device.",
	"router_shed_total":           "Queries the routing table refused.",
	"overload_admitted_total":     "Queries that passed deadline admission control.",
	"overload_rejected_total":     "Queries shed on arrival as provably late.",
	"overload_backpressure_total": "High-water-mark backpressure engagements.",
	"overload_degraded_total":     "Emergency accuracy degradations opened.",
	"overload_escalated_total":    "Emergency degradations escalated one tier.",
	"overload_restored_total":     "Planned routings restored after degradation.",
	"reallocations_total":         "Successfully produced allocation plans.",
	"realloc_fallback_total":      "Plans produced by the fallback allocator.",
	"realloc_carry_forward_total": "Last-resort projections of the previous plan.",
	"realloc_failed_total":        "Re-allocation attempts where every stage errored.",
	"trace_dropped_total":         "Trace events evicted by ring-buffer wrap (explanations may be incomplete).",
}

// SetHelp registers Prometheus help text for a metric name (overriding the
// standard set). No-op on a nil registry.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = help
}

func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.help[name]; ok {
		return h
	}
	return standardHelp[name]
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): a # HELP line where help text is known, a # TYPE
// line, then the sample. Metric names are already exposition-safe
// ([a-z_]+); values are untyped integers. Serve it with
// PrometheusContentType so standard scrapers parse it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.Snapshot() {
		if h := r.helpFor(m.Name); h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.Name, m.Kind, m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// SystemCounters bundles the counters and gauges every serving engine
// (simulator and live cluster) increments, pre-resolved so the hot path is
// a single atomic add per event. Built from a nil registry, every field is
// nil and every update a no-op.
type SystemCounters struct {
	// Data path.
	Arrivals     *Counter
	Served       *Counter
	Late         *Counter
	Dropped      *Counter
	Requeued     *Counter
	Retried      *Counter
	Batches      *Counter
	BatchQueries *Counter
	ModelLoads   *Counter
	// Batching-policy decisions (one per Policy.Decide call).
	BatchExecutes *Counter
	BatchWaits    *Counter
	BatchIdles    *Counter
	BatchDrops    *Counter
	// Fleet state.
	DevicesUp        *Gauge
	DemandScaleMilli *Gauge // DemandScale of the live plan, in thousandths
}

// NewSystemCounters resolves the standard counter set from the registry
// (all nil when the registry is nil).
func NewSystemCounters(r *Registry) SystemCounters {
	if r == nil {
		return SystemCounters{}
	}
	return SystemCounters{
		Arrivals:         r.Counter("queries_arrived_total"),
		Served:           r.Counter("queries_served_total"),
		Late:             r.Counter("queries_late_total"),
		Dropped:          r.Counter("queries_dropped_total"),
		Requeued:         r.Counter("queries_requeued_total"),
		Retried:          r.Counter("queries_retried_total"),
		Batches:          r.Counter("batches_executed_total"),
		BatchQueries:     r.Counter("batch_queries_total"),
		ModelLoads:       r.Counter("model_loads_total"),
		BatchExecutes:    r.Counter("batching_execute_total"),
		BatchWaits:       r.Counter("batching_wait_total"),
		BatchIdles:       r.Counter("batching_idle_total"),
		BatchDrops:       r.Counter("batching_drop_total"),
		DevicesUp:        r.Gauge("devices_up"),
		DemandScaleMilli: r.Gauge("plan_demand_scale_milli"),
	}
}

// RouterCounters instrument the routing table's pick path.
type RouterCounters struct {
	// Picks counts queries routed to a device.
	Picks *Counter
	// Shed counts queries the table refused (no serving device, or shed by
	// admission control).
	Shed *Counter
}

// NewRouterCounters resolves the router counter set from the registry.
func NewRouterCounters(r *Registry) RouterCounters {
	if r == nil {
		return RouterCounters{}
	}
	return RouterCounters{
		Picks: r.Counter("router_picks_total"),
		Shed:  r.Counter("router_shed_total"),
	}
}

// OverloadCounters instrument the overload guard: admission decisions,
// backpressure engagements and the emergency-degradation ladder.
type OverloadCounters struct {
	// Admitted counts queries that passed deadline admission control;
	// Rejected counts queries shed on arrival because they provably could
	// not meet their deadline given the picked device's backlog.
	Admitted *Counter
	Rejected *Counter
	// Backpressured counts high-water-mark engagements (a device's mailbox
	// filling past the bound and leaving the routing set).
	Backpressured *Counter
	// Degraded / Escalated / Restored count emergency accuracy-degradation
	// transitions.
	Degraded  *Counter
	Escalated *Counter
	Restored  *Counter
}

// NewOverloadCounters resolves the overload counter set from the registry
// (all nil when the registry is nil).
func NewOverloadCounters(r *Registry) OverloadCounters {
	if r == nil {
		return OverloadCounters{}
	}
	return OverloadCounters{
		Admitted:      r.Counter("overload_admitted_total"),
		Rejected:      r.Counter("overload_rejected_total"),
		Backpressured: r.Counter("overload_backpressure_total"),
		Degraded:      r.Counter("overload_degraded_total"),
		Escalated:     r.Counter("overload_escalated_total"),
		Restored:      r.Counter("overload_restored_total"),
	}
}

// ControlCounters instrument the control plane's re-allocation path.
type ControlCounters struct {
	// Reallocations counts successfully produced plans.
	Reallocations *Counter
	// FallbackPlans counts plans produced by the fallback allocator after a
	// primary error; CarryForwardPlans counts last-resort projections of the
	// previous plan; FailedSolves counts attempts where all stages errored.
	FallbackPlans     *Counter
	CarryForwardPlans *Counter
	FailedSolves      *Counter
}

// NewControlCounters resolves the control-plane counter set.
func NewControlCounters(r *Registry) ControlCounters {
	if r == nil {
		return ControlCounters{}
	}
	return ControlCounters{
		Reallocations:     r.Counter("reallocations_total"),
		FallbackPlans:     r.Counter("realloc_fallback_total"),
		CarryForwardPlans: r.Counter("realloc_carry_forward_total"),
		FailedSolves:      r.Counter("realloc_failed_total"),
	}
}
