package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Record(time.Second, EvArrival, 1, 0, 0, -1)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("nil tracer should be inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil tracer JSONL: err=%v len=%d", err, buf.Len())
	}

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter should read 0")
	}
	var g *Gauge
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatalf("nil gauge should read 0")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Snapshot() != nil {
		t.Fatalf("nil registry should hand out nil metrics")
	}
	sc := NewSystemCounters(nil)
	sc.Arrivals.Inc()
	sc.DevicesUp.Set(3)
	if sc.Arrivals.Value() != 0 {
		t.Fatalf("system counters from nil registry should be inert")
	}
}

func TestTracerOrderAndFields(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(10*time.Millisecond, EvArrival, 42, 1, -1, -1)
	tr.Record(10*time.Millisecond, EvRoute, 42, 1, 3, -1)
	tr.Record(25*time.Millisecond, EvDone, 42, 1, 3, 7)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[1].Kind != EvRoute || evs[1].Device != 3 || evs[1].Query != 42 {
		t.Fatalf("route event malformed: %+v", evs[1])
	}
	if evs[2].Batch != 7 {
		t.Fatalf("done event batch: %+v", evs[2])
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(time.Duration(i)*time.Millisecond, EvArrival, uint64(i), 0, -1, -1)
	}
	if tr.Len() != 4 {
		t.Fatalf("want 4 buffered, got %d", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("want 6 dropped, got %d", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		want := uint64(6 + i)
		if ev.Query != want || ev.Seq != want {
			t.Fatalf("event %d: want query/seq %d, got %+v", i, want, ev)
		}
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(time.Duration(i), EvEnqueue, uint64(g*100+i), 0, 0, -1)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("want 800 events, got %d", tr.Len())
	}
	seen := make(map[uint64]bool)
	for _, ev := range tr.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestExportByteStable(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(64)
		tr.Record(1*time.Millisecond, EvArrival, 1, 0, -1, -1)
		tr.Record(2*time.Millisecond, EvRoute, 1, 0, 2, -1)
		tr.Record(5*time.Millisecond, EvBatchFormed, 1, 0, 2, 3)
		tr.Record(9*time.Millisecond, EvLate, 1, 0, 2, 3)
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL export not byte-stable:\n%s\nvs\n%s", a.String(), b.String())
	}
	a.Reset()
	b.Reset()
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("Chrome trace export not byte-stable")
	}
}

func TestExportValidJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(1500*time.Microsecond, EvArrival, 9, 2, -1, -1)
	tr.Record(2500*time.Microsecond, EvDropped, 9, 2, -1, -1)

	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &arr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, chrome.String())
	}
	if len(arr) != 2 || arr[0]["name"] != "arrival" || arr[0]["ts"] != float64(1500) {
		t.Fatalf("unexpected chrome events: %v", arr)
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d", len(lines))
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
	}
	var empty bytes.Buffer
	if err := NewTracer(4).WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	var none []any
	if err := json.Unmarshal(empty.Bytes(), &none); err != nil || len(none) != 0 {
		t.Fatalf("empty chrome trace invalid: %v %q", err, empty.String())
	}
}

func TestRecordCtxCausalContext(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(1*time.Millisecond, EvArrival, 5, 1, -1, -1)
	tr.RecordCtx(2*time.Millisecond, EvEnqueue, 5, 1, 3, -1, Ctx{Plan: 4, Episode: 2})
	tr.RecordCtx(3*time.Millisecond, EvDropped, 5, 1, 3, -1, Ctx{Plan: 4, Cause: CauseExpired})
	evs := tr.Events()
	if evs[0].Plan != 0 || evs[0].Episode != 0 || evs[0].Cause != CauseNone {
		t.Fatalf("Record should stamp zero context: %+v", evs[0])
	}
	if evs[1].Plan != 4 || evs[1].Episode != 2 || evs[1].Cause != CauseNone {
		t.Fatalf("enqueue context lost: %+v", evs[1])
	}
	if evs[2].Cause != CauseExpired {
		t.Fatalf("drop cause lost: %+v", evs[2])
	}

	var nilTr *Tracer
	nilTr.RecordCtx(time.Second, EvArrival, 1, 0, 0, -1, Ctx{Plan: 1})
	nilTr.SetDropCounter(nil)
	if nilTr.Len() != 0 {
		t.Fatal("nil tracer should be inert")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(1234567*time.Nanosecond, EvArrival, 9, 2, -1, -1)
	tr.RecordCtx(2*time.Millisecond, EvEnqueue, 9, 2, 1, -1, Ctx{Plan: 3, Episode: 1})
	tr.RecordCtx(3*time.Millisecond, EvRequeued, 9, 2, 1, -1, Ctx{Plan: 3, Cause: CauseDeviceFailure})
	tr.Record(4*time.Millisecond, EvDone, 9, 2, 2, 0)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}

	if _, err := ReadJSONL(strings.NewReader(`{"kind":"nonsense"}`)); err == nil {
		t.Fatal("unknown kind should fail the parse")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"done","cause":"nonsense"}`)); err == nil {
		t.Fatal("unknown cause should fail the parse")
	}
	if evs, err := ReadJSONL(strings.NewReader("\n\n")); err != nil || len(evs) != 0 {
		t.Fatalf("blank trace: %v %v", evs, err)
	}
}

func TestTracerDropCounter(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(4)
	tr.SetDropCounter(r.Counter("trace_dropped_total"))
	for i := 0; i < 10; i++ {
		tr.Record(time.Duration(i)*time.Millisecond, EvArrival, uint64(i), 0, -1, -1)
	}
	if got := r.Counter("trace_dropped_total").Value(); got != 6 {
		t.Fatalf("trace_dropped_total = %d, want 6", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", tr.Dropped())
	}
	if standardHelp["trace_dropped_total"] == "" {
		t.Fatal("trace_dropped_total needs standard help text")
	}
}

func TestCauseNames(t *testing.T) {
	for c := Cause(0); c < numCauses; c++ {
		if c != CauseNone && c.String() == "" {
			t.Fatalf("cause %d has no name", c)
		}
		back, ok := CauseByName(c.String())
		if !ok || back != c {
			t.Fatalf("cause %d does not round-trip through %q", c, c.String())
		}
	}
	if CauseDeviceFailure.String() != "device_failure" || CauseStaleRoute.String() != "stale_route" {
		t.Fatalf("stable cause names changed")
	}
	if got := Cause(200).String(); got != "cause(200)" {
		t.Fatalf("out-of-range cause name: %q", got)
	}
	if _, ok := CauseByName("bogus"); ok {
		t.Fatal("bogus cause should not resolve")
	}
	k, ok := KindByName("batch_formed")
	if !ok || k != EvBatchFormed {
		t.Fatalf("KindByName(batch_formed) = %v %v", k, ok)
	}
	if _, ok := KindByName("bogus"); ok {
		t.Fatal("bogus kind should not resolve")
	}
}

func TestEventKindNames(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" {
			t.Fatalf("event kind %d has no name", k)
		}
	}
	if EvDone.String() != "done" || EvBatchFormed.String() != "batch_formed" {
		t.Fatalf("stable wire names changed: %q %q", EvDone.String(), EvBatchFormed.String())
	}
	if got := EventKind(200).String(); got != "event(200)" {
		t.Fatalf("out-of-range kind name: %q", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("served")
	if c != r.Counter("served") {
		t.Fatalf("Counter not idempotent")
	}
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	g := r.Gauge("up")
	g.Set(10)
	g.Add(-4)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 metrics, got %v", snap)
	}
	// Sorted by name: "served" then "up".
	if snap[0].Name != "served" || snap[0].Value != 5 || snap[0].Kind != "counter" {
		t.Fatalf("counter snapshot: %+v", snap[0])
	}
	if snap[1].Name != "up" || snap[1].Value != 6 || snap[1].Kind != "gauge" {
		t.Fatalf("gauge snapshot: %+v", snap[1])
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "served 5\nup 6\n"
	if buf.String() != want {
		t.Fatalf("WriteText = %q, want %q", buf.String(), want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Gauge("level").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("want 8000 hits, got %d", got)
	}
}

func TestCounterBundles(t *testing.T) {
	r := NewRegistry()
	sc := NewSystemCounters(r)
	sc.Arrivals.Inc()
	sc.BatchQueries.Add(8)
	sc.DevicesUp.Set(12)
	rc := NewRouterCounters(r)
	rc.Picks.Inc()
	rc.Shed.Inc()
	cc := NewControlCounters(r)
	cc.Reallocations.Inc()
	cc.CarryForwardPlans.Inc()

	want := map[string]int64{
		"queries_arrived_total":       1,
		"batch_queries_total":         8,
		"devices_up":                  12,
		"router_picks_total":          1,
		"router_shed_total":           1,
		"reallocations_total":         1,
		"realloc_carry_forward_total": 1,
	}
	got := make(map[string]int64)
	for _, m := range r.Snapshot() {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("metric %s = %d, want %d (snapshot %v)", name, got[name], v, got)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	var nilReg *Registry
	var nilBuf bytes.Buffer
	if err := nilReg.WritePrometheus(&nilBuf); err != nil || nilBuf.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, nilBuf.Len())
	}

	r := NewRegistry()
	r.Counter("queries_arrived_total").Add(7)
	r.Gauge("devices_up").Set(4)
	r.Counter("zz_custom_total").Inc()
	r.SetHelp("zz_custom_total", "A custom metric.")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Canonical metrics get # HELP from the standard table; every metric
	// gets # TYPE with its kind; values follow on their own line.
	for _, w := range []string{
		"# HELP queries_arrived_total ",
		"# TYPE queries_arrived_total counter\nqueries_arrived_total 7\n",
		"# TYPE devices_up gauge\ndevices_up 4\n",
		"# HELP zz_custom_total A custom metric.\n# TYPE zz_custom_total counter\nzz_custom_total 1\n",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("prometheus output missing %q:\n%s", w, out)
		}
	}
	// Metrics appear sorted by name, and every non-comment line is
	// "name value".
	var prev string
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		if prev != "" && name < prev {
			t.Fatalf("metrics out of order: %q after %q", name, prev)
		}
		prev = name
	}
	if PrometheusContentType != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", PrometheusContentType)
	}
}
