package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTracerDisabled measures the cost of an instrumented call site
// when tracing is off (nil tracer) — the path every production run takes
// by default. The ISSUE budget is <1% regression vs no instrumentation at
// all; a nil-receiver check is ~1ns, well under any batch-formation cost.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(time.Duration(i), EvDone, uint64(i), 0, 1, 2)
	}
}

// BenchmarkTracerEnabled measures the tracer-on hot path (mutex + ring
// write).
func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(time.Duration(i), EvDone, uint64(i), 0, 1, 2)
	}
}

// BenchmarkCounterDisabled measures a counter increment through a nil
// counter (telemetry registry absent).
func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterEnabled measures a live atomic counter increment.
func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
