package telemetry_test

import (
	"testing"
	"time"

	"proteus/internal/allocator"
	"proteus/internal/cluster"
	"proteus/internal/core"
	"proteus/internal/models"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
)

// These end-to-end benchmarks run a complete (small) simulation with
// telemetry off and on, so BENCH_telemetry.json records the whole-system
// cost of the instrumentation, not just the per-call-site nanoseconds: the
// off/on ns/op ratio is the number the <1%-disabled-overhead budget is
// judged against at system scale.

func benchSim(b *testing.B, tracer *telemetry.Tracer, registry *telemetry.Registry) {
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "mobilenet" || f.Name == "efficientnet" {
			fams = append(fams, f)
		}
	}
	names := models.FamilyNames(fams)
	tr := trace.NewFlat(names, []float64{40, 40}, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{
			Cluster:  cluster.ScaledTestbed(4),
			Families: fams,
			Allocator: allocator.NewMILP(&allocator.MILPOptions{
				TimeLimit: 200 * time.Millisecond, RelGap: 0.01,
			}),
			Seed:      7,
			Tracer:    tracer,
			Telemetry: registry,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTelemetryOff(b *testing.B) {
	benchSim(b, nil, nil)
}

func BenchmarkSimTelemetryOn(b *testing.B) {
	benchSim(b, telemetry.NewTracer(1<<18), telemetry.NewRegistry())
}
