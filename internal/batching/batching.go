// Package batching implements per-worker batch scheduling policies: the
// paper's proactive, non-work-conserving adaptive batching (§5) and the
// baselines it is evaluated against in §6.4 — Clipper's reactive AIMD
// batching, Nexus's work-conserving early-drop batching — plus a static
// batch size used by the "Proteus w/o AB" ablation (§6.5).
//
// A policy is consulted by its worker whenever the device becomes free or a
// query arrives while the device is idle. It sees the queued queries and the
// batch latency model and returns one of three decisions: execute a batch
// now, stay idle until a wake-up time (non-work-conserving waiting), or do
// nothing because the queue is empty. Policies may also instruct the worker
// to drop hopeless queries (Nexus).
package batching

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Query is the policy-visible state of one queued query.
type Query struct {
	ID       uint64
	Arrival  time.Duration // when it entered the worker queue
	Deadline time.Duration // absolute SLO expiry time
}

// Context is the worker state a policy decides on.
type Context struct {
	// Now is the current (virtual or wall-clock) time.
	Now time.Duration
	// Queue holds pending queries in arrival order.
	Queue []Query
	// MaxBatch is the SLO- and memory-constrained maximum batch size for
	// the hosted variant on this device (§4). Always >= 1 for a hosted,
	// SLO-feasible variant.
	MaxBatch int
	// MemBatch is the memory-only maximum batch size. Reactive policies
	// (AIMD) that do not reason about SLOs are still physically limited by
	// it.
	MemBatch int
	// ProcTime returns the batch processing latency for a batch size.
	ProcTime func(batch int) time.Duration
	// ArrivalRate is the worker's smoothed query arrival rate in QPS.
	// Rate-planned policies (Nexus) size their batch from it.
	ArrivalRate float64
}

// Action is the kind of decision a policy makes.
type Action int

// Policy decisions.
const (
	// Idle means nothing to do (empty queue after drops).
	Idle Action = iota
	// Execute means run a batch of the first BatchSize queued queries now.
	Execute
	// Wait means stay idle and re-evaluate at WakeAt (or on arrival).
	Wait
)

func (a Action) String() string {
	switch a {
	case Idle:
		return "idle"
	case Execute:
		return "execute"
	case Wait:
		return "wait"
	}
	return "unknown"
}

// Decision is a policy's verdict.
type Decision struct {
	Action Action
	// BatchSize is the number of head-of-queue queries to execute.
	BatchSize int
	// WakeAt is the absolute re-evaluation time for Wait.
	WakeAt time.Duration
	// Drop lists queue indices (into Context.Queue, pre-execution) to drop
	// before acting. Indices are ascending.
	Drop []int
}

// Policy is a batching algorithm. Implementations are per-worker and not
// safe for concurrent use.
type Policy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// Decide inspects the queue and picks an action.
	Decide(ctx *Context) Decision
	// Observe reports a finished batch: how many queries completed and how
	// many of them violated their SLO. Reactive policies adapt on it.
	Observe(completed, violations int)
	// Reset clears adaptive state (used when the hosted model changes).
	Reset()
}

// Factory creates per-worker policy instances.
type Factory func() Policy

func clampBatch(b, queueLen, maxBatch int) int {
	if b > queueLen {
		b = queueLen
	}
	if b > maxBatch {
		b = maxBatch
	}
	if b < 1 {
		b = 1
	}
	return b
}

// ---------------------------------------------------------------------------
// Proteus adaptive batching (§5)

// AccScale is the paper's proactive, non-work-conserving adaptive batching
// algorithm ("accscale" in the artifact's config files). With q queued
// queries and the first expiring at T_exp(1), it waits for the (q+1)-st
// query until T_max_wait(q+1) = T_exp(1) − T_process(q+1); if that point
// passes, it executes the q queries it has, guaranteeing the head of the
// queue never times out because of batching.
type AccScale struct{}

// NewAccScale returns the Proteus adaptive batching policy.
func NewAccScale() *AccScale { return &AccScale{} }

// Name implements Policy.
func (*AccScale) Name() string { return "accscale" }

// Reset implements Policy. AccScale is stateless.
func (*AccScale) Reset() {}

// Observe implements Policy. AccScale is proactive, not reactive.
func (*AccScale) Observe(completed, violations int) {}

// Decide implements Policy.
func (*AccScale) Decide(ctx *Context) Decision {
	// Proactive guarantee, part one: queries that cannot meet their SLO
	// even executed alone right now are dropped rather than run late — a
	// doomed query only wastes a batch slot (its client has timed out).
	var drop []int
	alive := make([]Query, 0, len(ctx.Queue))
	horizon := ctx.Now + ctx.ProcTime(1)
	for i, qq := range ctx.Queue {
		if qq.Deadline < horizon {
			drop = append(drop, i)
			continue
		}
		alive = append(alive, qq)
	}
	q := len(alive)
	if q == 0 {
		return Decision{Action: Idle, Drop: drop}
	}
	texp1 := alive[0].Deadline
	// Proactive guarantee, part two (the §5 invariant): every batch must
	// finish before the head query expires. Under a backlog the batch size
	// is therefore clamped so that now + T_process(b) <= T_exp(1); the
	// overflow is served in subsequent batches against its own (later)
	// deadlines instead of dooming the head.
	bmax := q
	if bmax > ctx.MaxBatch {
		bmax = ctx.MaxBatch
	}
	for bmax > 1 && ctx.Now+ctx.ProcTime(bmax) > texp1 {
		bmax--
	}
	if bmax < q || bmax == ctx.MaxBatch {
		// Saturated (a full batch is available) or head-constrained
		// (waiting can only shrink the feasible batch): execute now.
		return Decision{Action: Execute, BatchSize: bmax, Drop: drop}
	}
	// q queries, all of which fit one batch, with room to grow:
	// T_max_wait(q+1) is the latest moment at which executing a batch of
	// q+1 still finishes before the head query expires.
	maxWaitNext := texp1 - ctx.ProcTime(q+1)
	if ctx.Now >= maxWaitNext {
		// Cannot afford to wait for one more query; run with what we have.
		return Decision{Action: Execute, BatchSize: q, Drop: drop}
	}
	// Safe to wait for the (q+1)-st arrival until maxWaitNext. If a query
	// arrives earlier, the worker re-invokes Decide, which re-evaluates
	// with q' = q+1 (the Case 2 recursion of §5).
	return Decision{Action: Wait, WakeAt: maxWaitNext, Drop: drop}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ---------------------------------------------------------------------------
// Nexus early-drop batching (§6.4 baseline)

// Nexus is the work-conserving early-drop policy of Nexus (SOSP '19) as
// characterized in the paper: the scheduler plans a *fixed* batch size per
// epoch from the measured arrival rate (the smallest batch whose throughput
// covers the rate); the executor then runs work-conservingly — whenever the
// device is free it immediately executes up to that planned batch, first
// dropping queries that would miss their deadline even in that batch. Both
// §6.4 weaknesses follow: the planned size lags when the per-second rate
// changes, and immediate dispatch squanders batching opportunity when
// inter-arrivals are bursty.
type Nexus struct{}

// NewNexus returns the Nexus baseline policy.
func NewNexus() *Nexus { return &Nexus{} }

// Name implements Policy.
func (*Nexus) Name() string { return "nexus" }

// Reset implements Policy. Nexus is stateless (its plan derives from the
// context's rate estimate).
func (*Nexus) Reset() {}

// Observe implements Policy.
func (*Nexus) Observe(completed, violations int) {}

// plannedBatch returns the smallest batch size whose steady-state
// throughput b/proc(b) covers the arrival rate, capped by MaxBatch.
func plannedBatch(ctx *Context) int {
	b := 1
	for b < ctx.MaxBatch {
		tput := float64(b) / ctx.ProcTime(b).Seconds()
		if tput >= ctx.ArrivalRate {
			break
		}
		b++
	}
	return b
}

// Decide implements Policy.
func (*Nexus) Decide(ctx *Context) Decision {
	planned := plannedBatch(ctx)
	// Early drop against the planned batch's latency, iterating because
	// drops shrink the executed batch.
	idx := make([]int, len(ctx.Queue))
	for i := range ctx.Queue {
		idx[i] = i
	}
	var drop []int
	for {
		if len(idx) == 0 {
			return Decision{Action: Idle, Drop: drop}
		}
		b := len(idx)
		if b > planned {
			b = planned
		}
		finish := ctx.Now + ctx.ProcTime(b)
		dropped := false
		keep := idx[:0]
		for pos, qi := range idx {
			if pos < b && ctx.Queue[qi].Deadline < finish {
				drop = append(drop, qi)
				dropped = true
				continue
			}
			keep = append(keep, qi)
		}
		idx = keep
		if !dropped {
			sortInts(drop)
			return Decision{Action: Execute, BatchSize: b, Drop: drop}
		}
	}
}

// ---------------------------------------------------------------------------
// Clipper AIMD batching (§6.4 baseline)

// AIMD is Clipper's reactive additive-increase/multiplicative-decrease
// batching: the target batch size grows by one after every violation-free
// batch and backs off multiplicatively when a batch causes SLO timeouts.
// It is work-conserving and deadline-oblivious — exactly the weaknesses the
// paper's §6.4 analysis attributes to it.
type AIMD struct {
	target   float64
	decrease float64
}

// NewAIMD returns the Clipper baseline with the standard 10% backoff.
func NewAIMD() *AIMD { return &AIMD{target: 1, decrease: 0.9} }

// Name implements Policy.
func (*AIMD) Name() string { return "aimd" }

// Reset implements Policy.
func (p *AIMD) Reset() { p.target = 1 }

// Target exposes the current batch-size target (for tests and logs).
func (p *AIMD) Target() float64 { return p.target }

// Observe implements Policy: additive increase on clean batches,
// multiplicative decrease on violations.
func (p *AIMD) Observe(completed, violations int) {
	if violations > 0 {
		p.target *= p.decrease
		if p.target < 1 {
			p.target = 1
		}
		return
	}
	if completed > 0 {
		p.target++
	}
}

// Decide implements Policy.
func (p *AIMD) Decide(ctx *Context) Decision {
	if len(ctx.Queue) == 0 {
		return Decision{Action: Idle}
	}
	b := int(p.target)
	// AIMD knows nothing about SLOs; it is only physically capped by
	// device memory.
	b = clampBatch(b, len(ctx.Queue), ctx.MemBatch)
	return Decision{Action: Execute, BatchSize: b}
}

// ---------------------------------------------------------------------------
// Static batching (ablation)

// Static always executes a fixed batch size (1 in the paper's "Proteus w/o
// AB" ablation). Work-conserving.
type Static struct{ size int }

// NewStatic returns a fixed batch-size policy.
func NewStatic(size int) *Static {
	if size < 1 {
		panic(fmt.Sprintf("batching: static size %d must be >= 1", size))
	}
	return &Static{size: size}
}

// Name implements Policy.
func (p *Static) Name() string { return fmt.Sprintf("static-%d", p.size) }

// Reset implements Policy.
func (*Static) Reset() {}

// Observe implements Policy.
func (*Static) Observe(completed, violations int) {}

// Decide implements Policy.
func (p *Static) Decide(ctx *Context) Decision {
	if len(ctx.Queue) == 0 {
		return Decision{Action: Idle}
	}
	return Decision{Action: Execute, BatchSize: clampBatch(p.size, len(ctx.Queue), ctx.MemBatch)}
}

// ByName returns a factory for the artifact's batching-policy names:
// "accscale", "nexus", "aimd", "static-N" (N a positive integer).
func ByName(name string) (Factory, error) {
	switch name {
	case "accscale":
		return func() Policy { return NewAccScale() }, nil
	case "nexus":
		return func() Policy { return NewNexus() }, nil
	case "aimd":
		return func() Policy { return NewAIMD() }, nil
	}
	// Parse "static-N" strictly: Sscanf would accept trailing garbage
	// ("static-5xyz" → 5), silently truncating typo'd configs.
	if rest, ok := strings.CutPrefix(name, "static-"); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n >= 1 && rest == strconv.Itoa(n) {
			return func() Policy { return NewStatic(n) }, nil
		}
		return nil, fmt.Errorf("batching: malformed static policy %q: want static-N with N a positive integer", name)
	}
	return nil, fmt.Errorf("batching: unknown policy %q", name)
}
