package batching

import (
	"testing"
	"testing/quick"
	"time"

	"proteus/internal/numeric"
)

// randomCtx builds a random but well-formed batching context: FIFO queue
// with non-decreasing deadlines (same-SLO arrivals), affine latency model.
func randomCtx(seed uint64) *Context {
	rng := numeric.NewRNG(seed)
	fixed := time.Duration(1+rng.Intn(30)) * time.Millisecond
	perItem := time.Duration(1+rng.Intn(10)) * time.Millisecond
	proc := func(b int) time.Duration { return fixed + time.Duration(b)*perItem }
	now := time.Duration(rng.Intn(1000)) * time.Millisecond
	n := rng.Intn(30)
	queue := make([]Query, n)
	deadline := now - 20*time.Millisecond // some may already be hopeless
	for i := range queue {
		deadline += time.Duration(rng.Intn(40)) * time.Millisecond
		queue[i] = Query{ID: uint64(i), Deadline: deadline}
	}
	return &Context{
		Now:      now,
		Queue:    queue,
		MaxBatch: 1 + rng.Intn(32),
		MemBatch: 64,
		ProcTime: proc,
	}
}

// TestPropertyAccScaleNeverExecutesLateHead checks the §5 invariant: any
// batch AccScale executes finishes no later than the surviving head's
// deadline, and every dropped query was truly hopeless.
func TestPropertyAccScaleNeverExecutesLateHead(t *testing.T) {
	p := NewAccScale()
	f := func(seed uint64) bool {
		ctx := randomCtx(seed)
		d := p.Decide(ctx)
		// Drops must be hopeless: deadline < now + proc(1).
		for _, i := range d.Drop {
			if i < 0 || i >= len(ctx.Queue) {
				return false
			}
			if ctx.Queue[i].Deadline >= ctx.Now+ctx.ProcTime(1) {
				return false
			}
		}
		switch d.Action {
		case Execute:
			if d.BatchSize < 1 || d.BatchSize > ctx.MaxBatch {
				return false
			}
			head, ok := survivingHead(ctx, d.Drop)
			if !ok {
				return false // executing with an empty surviving queue
			}
			return ctx.Now+ctx.ProcTime(d.BatchSize) <= head.Deadline
		case Wait:
			if d.WakeAt < ctx.Now {
				return false
			}
			head, ok := survivingHead(ctx, d.Drop)
			if !ok {
				return false
			}
			// Waking at WakeAt and executing the whole surviving queue must
			// still meet the head deadline.
			q := len(ctx.Queue) - len(d.Drop)
			return d.WakeAt+ctx.ProcTime(q) <= head.Deadline
		case Idle:
			return len(ctx.Queue)-len(d.Drop) == 0
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func survivingHead(ctx *Context, drop []int) (Query, bool) {
	di := 0
	for i, q := range ctx.Queue {
		if di < len(drop) && drop[di] == i {
			di++
			continue
		}
		return q, true
	}
	return Query{}, false
}

// TestPropertyDropsAreAscendingAndUnique checks the Decision contract every
// worker relies on, for all three deadline-aware policies.
func TestPropertyDropsAreAscendingAndUnique(t *testing.T) {
	policies := []Policy{NewAccScale(), NewNexus(), NewStatic(2)}
	f := func(seed uint64, pick uint8) bool {
		p := policies[int(pick)%len(policies)]
		ctx := randomCtx(seed)
		ctx.ArrivalRate = float64(seed % 300)
		d := p.Decide(ctx)
		for i := 1; i < len(d.Drop); i++ {
			if d.Drop[i] <= d.Drop[i-1] {
				return false
			}
		}
		for _, idx := range d.Drop {
			if idx < 0 || idx >= len(ctx.Queue) {
				return false
			}
		}
		// BatchSize never exceeds the surviving queue.
		if d.Action == Execute && d.BatchSize > len(ctx.Queue)-len(d.Drop) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNexusBatchCoversRate checks Nexus's plan: the executed batch
// size's steady-state throughput covers the arrival rate or hits a cap.
func TestPropertyNexusBatchCoversRate(t *testing.T) {
	p := NewNexus()
	f := func(seed uint64, rate16 uint16) bool {
		ctx := randomCtx(seed)
		if len(ctx.Queue) == 0 {
			return true
		}
		// Make all deadlines comfortable so drops don't obscure the plan.
		for i := range ctx.Queue {
			ctx.Queue[i].Deadline = ctx.Now + time.Hour
		}
		ctx.ArrivalRate = float64(rate16 % 1000)
		d := p.Decide(ctx)
		if d.Action != Execute {
			return false
		}
		b := d.BatchSize
		if b >= ctx.MaxBatch || b >= len(ctx.Queue) {
			return true // capped by the max batch or by availability
		}
		tput := float64(b) / ctx.ProcTime(b).Seconds()
		return tput >= ctx.ArrivalRate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
