package batching

import (
	"fmt"
	"testing"
	"time"
)

// linearProc returns a latency model: fixed + perItem*batch.
func linearProc(fixed, perItem time.Duration) func(int) time.Duration {
	return func(b int) time.Duration { return fixed + time.Duration(b)*perItem }
}

func ctx(now time.Duration, queue []Query, maxBatch int, proc func(int) time.Duration) *Context {
	return &Context{Now: now, Queue: queue, MaxBatch: maxBatch, MemBatch: 1024, ProcTime: proc}
}

func q(id uint64, deadline time.Duration) Query {
	return Query{ID: id, Deadline: deadline}
}

func TestAccScaleIdleOnEmptyQueue(t *testing.T) {
	p := NewAccScale()
	d := p.Decide(ctx(0, nil, 8, linearProc(10*time.Millisecond, 5*time.Millisecond)))
	if d.Action != Idle {
		t.Fatalf("action %v", d.Action)
	}
}

func TestAccScaleWaitsWhenSafe(t *testing.T) {
	// One query, deadline at 200ms, proc(2) = 20ms → T_max_wait(2) = 180ms.
	// At now=0 it must wait until exactly 180ms.
	p := NewAccScale()
	proc := linearProc(10*time.Millisecond, 5*time.Millisecond)
	d := p.Decide(ctx(0, []Query{q(1, 200*time.Millisecond)}, 8, proc))
	if d.Action != Wait {
		t.Fatalf("action %v, want wait", d.Action)
	}
	want := 200*time.Millisecond - proc(2)
	if d.WakeAt != want {
		t.Fatalf("WakeAt %v, want %v", d.WakeAt, want)
	}
}

func TestAccScaleExecutesAtDeadline(t *testing.T) {
	// Same setup at now = T_max_wait(2): must execute the single query.
	p := NewAccScale()
	proc := linearProc(10*time.Millisecond, 5*time.Millisecond)
	wake := 200*time.Millisecond - proc(2)
	d := p.Decide(ctx(wake, []Query{q(1, 200*time.Millisecond)}, 8, proc))
	if d.Action != Execute || d.BatchSize != 1 {
		t.Fatalf("decision %+v, want execute batch 1", d)
	}
}

func TestAccScaleCase2Recursion(t *testing.T) {
	// §5 Case 2: a second query arrives before T_max_wait(2). With q=2 the
	// policy computes T_max_wait(3); if now is already past it, execute
	// with batch 2, which by construction still meets the head deadline.
	p := NewAccScale()
	proc := linearProc(10*time.Millisecond, 50*time.Millisecond)
	head := q(1, 200*time.Millisecond)
	// T_max_wait(3) = 200 - (10 + 150) = 40ms. At now=50ms with 2 queries:
	// past T_max_wait(3) → execute batch 2. Verify head still meets SLO:
	// 50 + proc(2) = 160 <= 200.
	d := p.Decide(ctx(50*time.Millisecond, []Query{head, q(2, 400*time.Millisecond)}, 8, proc))
	if d.Action != Execute || d.BatchSize != 2 {
		t.Fatalf("decision %+v, want execute batch 2", d)
	}
	if 50*time.Millisecond+proc(2) > head.Deadline {
		t.Fatal("test setup broken: head would miss SLO")
	}
	// At now=30ms (before T_max_wait(3)) it must wait until 40ms.
	d = p.Decide(ctx(30*time.Millisecond, []Query{head, q(2, 400*time.Millisecond)}, 8, proc))
	if d.Action != Wait || d.WakeAt != 40*time.Millisecond {
		t.Fatalf("decision %+v, want wait until 40ms", d)
	}
}

func TestAccScaleHeadNeverTimesOutFromWaiting(t *testing.T) {
	// Invariant of §5: whenever AccScale decides Execute with batch q as a
	// result of its own waiting (i.e. it was not already doomed on entry),
	// now + proc(q) <= head deadline.
	p := NewAccScale()
	proc := linearProc(5*time.Millisecond, 3*time.Millisecond)
	for n := 1; n <= 20; n++ {
		queue := make([]Query, n)
		for i := range queue {
			queue[i] = q(uint64(i), 100*time.Millisecond+time.Duration(i)*10*time.Millisecond)
		}
		c := ctx(0, queue, 32, proc)
		d := p.Decide(c)
		switch d.Action {
		case Execute:
			if c.Now+proc(d.BatchSize) > queue[0].Deadline {
				t.Fatalf("n=%d: head misses SLO", n)
			}
		case Wait:
			// Waiting until WakeAt then executing batch n must still meet
			// the head deadline.
			if d.WakeAt+proc(n) > queue[0].Deadline {
				t.Fatalf("n=%d: wake too late", n)
			}
		}
	}
}

func TestAccScaleFullBatchExecutesImmediately(t *testing.T) {
	p := NewAccScale()
	proc := linearProc(time.Millisecond, time.Millisecond)
	queue := make([]Query, 10)
	for i := range queue {
		queue[i] = q(uint64(i), time.Second)
	}
	d := p.Decide(ctx(0, queue, 4, proc))
	if d.Action != Execute || d.BatchSize != 4 {
		t.Fatalf("decision %+v, want execute batch 4 (MaxBatch)", d)
	}
}

func TestAccScaleNonWorkConserving(t *testing.T) {
	// The defining behaviour: with a relaxed deadline and a non-empty
	// queue, the device is deliberately left idle.
	p := NewAccScale()
	proc := linearProc(time.Millisecond, time.Millisecond)
	d := p.Decide(ctx(0, []Query{q(1, time.Second)}, 8, proc))
	if d.Action != Wait {
		t.Fatalf("decision %+v: AccScale must idle while waiting is safe", d)
	}
}

func TestNexusWorkConserving(t *testing.T) {
	// Nexus never waits: any non-empty queue with feasible queries executes
	// immediately.
	p := NewNexus()
	proc := linearProc(time.Millisecond, time.Millisecond)
	d := p.Decide(ctx(0, []Query{q(1, time.Second)}, 8, proc))
	if d.Action != Execute || d.BatchSize != 1 {
		t.Fatalf("decision %+v, want immediate execute", d)
	}
}

func TestNexusPlannedBatchTracksRate(t *testing.T) {
	// The planned batch is the smallest whose throughput covers the rate:
	// proc(b) = 10 + b ms, so b/proc(b) is 90.9 QPS at b=1, ~166 at b=2,
	// 230 at b=3...
	proc := linearProc(10*time.Millisecond, time.Millisecond)
	queue := make([]Query, 20)
	for i := range queue {
		queue[i] = q(uint64(i), time.Second)
	}
	p := NewNexus()
	c := ctx(0, queue, 16, proc)
	c.ArrivalRate = 50
	if d := p.Decide(c); d.BatchSize != 1 {
		t.Fatalf("rate 50: batch %d, want 1", d.BatchSize)
	}
	c.ArrivalRate = 200
	if d := p.Decide(c); d.BatchSize != 3 {
		t.Fatalf("rate 200: batch %d, want 3", d.BatchSize)
	}
	// The plan caps the batch even with a long queue — the fixed-size
	// weakness the paper's Fig. 6 exploits.
	if d := p.Decide(c); d.BatchSize >= len(queue) {
		t.Fatal("planned batch must not balloon to the queue length")
	}
}

func TestNexusPlannedBatchCappedByMax(t *testing.T) {
	proc := linearProc(10*time.Millisecond, time.Millisecond)
	queue := make([]Query, 20)
	for i := range queue {
		queue[i] = q(uint64(i), time.Second)
	}
	p := NewNexus()
	c := ctx(0, queue, 4, proc)
	c.ArrivalRate = 1e9
	if d := p.Decide(c); d.BatchSize != 4 {
		t.Fatalf("batch %d, want MaxBatch 4", d.BatchSize)
	}
}

func TestNexusDropsHopelessQueries(t *testing.T) {
	p := NewNexus()
	proc := linearProc(10*time.Millisecond, 0)
	// Query 0 already expired, query 1 feasible.
	queue := []Query{q(0, 5*time.Millisecond), q(1, 100*time.Millisecond)}
	d := p.Decide(ctx(20*time.Millisecond, queue, 8, proc))
	if d.Action != Execute || d.BatchSize != 1 {
		t.Fatalf("decision %+v", d)
	}
	if len(d.Drop) != 1 || d.Drop[0] != 0 {
		t.Fatalf("drop %v, want [0]", d.Drop)
	}
}

func TestNexusDropShrinksBatchAndRescues(t *testing.T) {
	// proc(1)=20ms, proc(2)=30ms, rate sized for batch 2. With deadlines
	// 25ms and 29ms the 2-batch finishes at 30ms and both queries miss, so
	// both are dropped and the worker idles.
	p := NewNexus()
	proc := linearProc(10*time.Millisecond, 10*time.Millisecond)
	queue := []Query{q(0, 25*time.Millisecond), q(1, 29*time.Millisecond)}
	c := ctx(0, queue, 8, proc)
	c.ArrivalRate = 66 // plans batch 2 (2/0.030s = 66.7)
	d := p.Decide(c)
	if d.Action != Idle || len(d.Drop) != 2 {
		t.Fatalf("decision %+v, want idle with both dropped", d)
	}
	// A case where shrinking rescues: q0 deadline 25ms, q1 deadline 35ms.
	// The 2-batch finishes at 30ms, so q0 is dropped; the shrunken 1-batch
	// finishes at 20ms and q1 survives.
	c = ctx(0, []Query{q(0, 25*time.Millisecond), q(1, 35*time.Millisecond)}, 8, proc)
	c.ArrivalRate = 66
	d = p.Decide(c)
	if d.Action != Execute || d.BatchSize != 1 || len(d.Drop) != 1 || d.Drop[0] != 0 {
		t.Fatalf("decision %+v, want execute 1 drop [0]", d)
	}
}

func TestAIMDStartsAtOne(t *testing.T) {
	p := NewAIMD()
	proc := linearProc(time.Millisecond, time.Millisecond)
	queue := []Query{q(0, time.Second), q(1, time.Second)}
	d := p.Decide(ctx(0, queue, 8, proc))
	if d.Action != Execute || d.BatchSize != 1 {
		t.Fatalf("decision %+v, want execute 1", d)
	}
}

func TestAIMDAdditiveIncrease(t *testing.T) {
	p := NewAIMD()
	for i := 0; i < 5; i++ {
		p.Observe(4, 0)
	}
	if p.Target() != 6 {
		t.Fatalf("target %v, want 6", p.Target())
	}
}

func TestAIMDMultiplicativeDecrease(t *testing.T) {
	p := NewAIMD()
	for i := 0; i < 9; i++ {
		p.Observe(4, 0)
	}
	if p.Target() != 10 {
		t.Fatalf("target %v", p.Target())
	}
	p.Observe(4, 1)
	if p.Target() != 9 {
		t.Fatalf("target after decrease %v, want 9", p.Target())
	}
}

func TestAIMDFloorAtOne(t *testing.T) {
	p := NewAIMD()
	for i := 0; i < 50; i++ {
		p.Observe(1, 1)
	}
	if p.Target() != 1 {
		t.Fatalf("target %v, want floored at 1", p.Target())
	}
}

func TestAIMDNoIncreaseOnEmptyBatch(t *testing.T) {
	p := NewAIMD()
	p.Observe(0, 0)
	if p.Target() != 1 {
		t.Fatalf("target %v", p.Target())
	}
}

func TestAIMDReset(t *testing.T) {
	p := NewAIMD()
	p.Observe(1, 0)
	p.Observe(1, 0)
	p.Reset()
	if p.Target() != 1 {
		t.Fatalf("target %v after reset", p.Target())
	}
}

func TestAIMDIgnoresSLOCapButHonorsMemory(t *testing.T) {
	p := NewAIMD()
	for i := 0; i < 20; i++ {
		p.Observe(1, 0)
	}
	queue := make([]Query, 30)
	for i := range queue {
		queue[i] = q(uint64(i), time.Second)
	}
	c := ctx(0, queue, 4, linearProc(time.Millisecond, time.Millisecond))
	c.MemBatch = 6
	d := p.Decide(c)
	if d.BatchSize != 6 {
		t.Fatalf("batch %d, want memory cap 6 (not SLO cap 4)", d.BatchSize)
	}
}

func TestStatic(t *testing.T) {
	p := NewStatic(1)
	proc := linearProc(time.Millisecond, time.Millisecond)
	queue := []Query{q(0, time.Second), q(1, time.Second)}
	d := p.Decide(ctx(0, queue, 8, proc))
	if d.Action != Execute || d.BatchSize != 1 {
		t.Fatalf("decision %+v", d)
	}
	if p.Name() != "static-1" {
		t.Fatalf("name %q", p.Name())
	}
	if NewStatic(4).Decide(ctx(0, queue, 8, proc)).BatchSize != 2 {
		t.Fatal("static must clamp to queue length")
	}
}

func TestStaticPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStatic(0)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"accscale", "nexus", "aimd", "static-3"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := f()
		if name == "static-3" {
			if p.Name() != "static-3" {
				t.Fatalf("name %q", p.Name())
			}
		} else if p.Name() != name {
			t.Fatalf("name %q, want %q", p.Name(), name)
		}
	}
	// Factories must return fresh instances of stateful policies. (Stateless
	// zero-size policies may legitimately share an address.)
	f, _ := ByName("aimd")
	a := f().(*AIMD)
	b := f().(*AIMD)
	a.Observe(1, 0)
	if b.Target() != 1 {
		t.Fatal("aimd factory shares state between instances")
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if _, err := ByName("static-0"); err == nil {
		t.Fatal("expected error for static-0")
	}
}

// TestByNameStrictStatic is the regression test for the lenient-parsing
// bug: fmt.Sscanf("static-5xyz", "static-%d", &n) succeeds, so a typo'd
// config like "static-4,8" silently became static-4. Parsing is now strict:
// exactly "static-N" with N a canonical positive integer.
func TestByNameStrictStatic(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
		size int
	}{
		{"static-5", true, 5},
		{"static-128", true, 128},
		{"static-5xyz", false, 0},
		{"static-4,8", false, 0},
		{"static--1", false, 0},
		{"static-", false, 0},
		{"static-03", false, 0},
		{"static-+3", false, 0},
		{"static- 3", false, 0},
	}
	for _, tc := range cases {
		f, err := ByName(tc.name)
		if tc.ok {
			if err != nil {
				t.Errorf("%q: unexpected error %v", tc.name, err)
				continue
			}
			want := fmt.Sprintf("static-%d", tc.size)
			if got := f().Name(); got != want {
				t.Errorf("%q: policy name %q, want %q", tc.name, got, want)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q: expected error, got policy %q", tc.name, f().Name())
		}
	}
}

func TestActionString(t *testing.T) {
	if Idle.String() != "idle" || Execute.String() != "execute" || Wait.String() != "wait" {
		t.Fatal("action strings")
	}
}
