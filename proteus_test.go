package proteus

import (
	"testing"
	"time"
)

func TestPublicAPISimulation(t *testing.T) {
	alloc, err := NewAllocator("ilp", &MILPOptions{TimeLimit: 300 * time.Millisecond, RelGap: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var fams []Family
	for _, f := range Zoo() {
		if f.Name == "efficientnet" || f.Name == "resnet" {
			fams = append(fams, f)
		}
	}
	sys, err := NewSystem(SystemConfig{
		Cluster:   ScaledTestbed(8),
		Families:  fams,
		Allocator: alloc,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTwitterTrace(TwitterTraceConfig{
		Seconds: 60, BaseQPS: 50, PeakQPS: 120, Families: FamilyNames(fams), Seed: 2,
	})
	res, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Queries == 0 || res.Summary.Served == 0 {
		t.Fatalf("empty run: %v", res.Summary)
	}
}

func TestPublicAPIConstructors(t *testing.T) {
	if PaperTestbed().Size() != 40 {
		t.Fatal("paper testbed size")
	}
	if len(Zoo()) != 9 {
		t.Fatal("zoo families")
	}
	for _, name := range []string{"ilp", "infaas_v2", "sommelier", "clipper-ht", "clipper-ha"} {
		if _, err := NewAllocator(name, nil); err != nil {
			t.Fatalf("allocator %s: %v", name, err)
		}
	}
	for _, name := range []string{"accscale", "nexus", "aimd", "static-1"} {
		f, err := NewBatching(name)
		if err != nil {
			t.Fatalf("batching %s: %v", name, err)
		}
		if f() == nil {
			t.Fatalf("batching %s returned nil policy", name)
		}
	}
	if _, err := NewAllocator("bogus", nil); err == nil {
		t.Fatal("bogus allocator accepted")
	}
}

func TestPublicAPITraces(t *testing.T) {
	tr := NewTwitterTrace(TwitterTraceConfig{})
	if tr.Seconds() != 300 || len(tr.Families) != 9 {
		t.Fatalf("twitter defaults: %d s, %d families", tr.Seconds(), len(tr.Families))
	}
	bt := NewBurstyTrace(BurstyTraceConfig{Seconds: 100})
	if bt.Seconds() != 100 {
		t.Fatalf("bursty seconds %d", bt.Seconds())
	}
	if bt.PeakQPS() <= bt.MeanQPS() {
		t.Fatal("bursty trace has no bursts")
	}
}

func TestPublicAPISLO(t *testing.T) {
	for _, f := range Zoo() {
		slo := FamilySLO(f, 2)
		if slo <= 0 {
			t.Fatalf("family %s SLO %v", f.Name, slo)
		}
		if FamilySLO(f, 3) <= slo {
			t.Fatal("SLO not monotone in multiplier")
		}
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(Fig1a()) != 24 {
		t.Fatal("fig1a size")
	}
	points := Fig1b()
	if len(points) != 3125 {
		t.Fatal("fig1b size")
	}
	if len(ParetoFrontier(points)) == 0 {
		t.Fatal("empty frontier")
	}
	rows, err := Table2(ExperimentOptions{})
	if err != nil || len(rows) != 4 {
		t.Fatalf("table2: %v, %d rows", err, len(rows))
	}
}
