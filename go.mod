module proteus

go 1.22
