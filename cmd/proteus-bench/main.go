// Command proteus-bench regenerates the tables and figures of the Proteus
// paper's evaluation (§6). Summary tables go to stdout; time-series data
// for the timeseries figures is written as CSV files under -out.
//
// Usage:
//
//	proteus-bench -experiment all
//	proteus-bench -experiment fig4 -seconds 600 -cluster 20 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"proteus"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: all, fig1a, fig1b, table2, fig4, fig5, fig6, fig7, fig8, fig9, fig10, design, formulations, overload")
		seconds    = flag.Int("seconds", 300, "end-to-end trace length in seconds")
		clusterSz  = flag.Int("cluster", 20, "cluster size (2:1:1 CPU:1080Ti:V100)")
		seed       = flag.Uint64("seed", 0, "random seed (0 = default)")
		outDir     = flag.String("out", "", "directory for CSV time series (omit to skip)")
		traceDir   = flag.String("trace-dir", "", "directory for per-system lifecycle traces (Chrome trace_event .json + .jsonl; omit to skip)")
		budget     = flag.Duration("solver", 500*time.Millisecond, "MILP solve budget per re-allocation")
	)
	flag.Parse()

	opts := proteus.ExperimentOptions{
		ClusterSize:  *clusterSz,
		TraceSeconds: *seconds,
		Seed:         *seed,
		SolverBudget: *budget,
		Trace:        *traceDir != "",
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }
	ran := false
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "proteus-bench: %s: %v\n", name, err)
		os.Exit(1)
	}

	if want("fig1a") {
		ran = true
		section("Figure 1a: EfficientNet accuracy-throughput trade-off per device (batch 1)")
		if err := proteus.RenderFig1a(os.Stdout, proteus.Fig1a()); err != nil {
			fail("fig1a", err)
		}
	}
	if want("fig1b") {
		ran = true
		section("Figure 1b: 5 variants x 5 devices, all 3125 placements")
		if err := proteus.RenderFig1b(os.Stdout, proteus.Fig1b()); err != nil {
			fail("fig1b", err)
		}
	}
	if want("table2") {
		ran = true
		section("Table 2: feature comparison")
		rows, err := proteus.Table2(opts)
		if err != nil {
			fail("table2", err)
		}
		if err := proteus.RenderTable2(os.Stdout, rows); err != nil {
			fail("table2", err)
		}
	}
	if want("fig4") {
		ran = true
		section("Figure 4: end-to-end comparison on the Twitter-like trace")
		results, err := proteus.Fig4(opts)
		if err != nil {
			fail("fig4", err)
		}
		if err := proteus.RenderSystems(os.Stdout, results); err != nil {
			fail("fig4", err)
		}
		writeSeries(*outDir, "fig4", results)
		writeTraces(*traceDir, "fig4", results)
	}
	if want("fig5") {
		ran = true
		section("Figure 5: responsiveness to macro-bursts")
		results, err := proteus.Fig5(opts)
		if err != nil {
			fail("fig5", err)
		}
		if err := proteus.RenderSystems(os.Stdout, results); err != nil {
			fail("fig5", err)
		}
		writeSeries(*outDir, "fig5", results)
		writeTraces(*traceDir, "fig5", results)
	}
	if want("fig6") {
		ran = true
		section("Figure 6: adaptive batching under uniform / Poisson / Gamma arrivals")
		points, err := proteus.Fig6(opts)
		if err != nil {
			fail("fig6", err)
		}
		if err := proteus.RenderFig6(os.Stdout, points); err != nil {
			fail("fig6", err)
		}
	}
	if want("fig7") {
		ran = true
		section("Figure 7: ablation study")
		results, err := proteus.Fig7(opts)
		if err != nil {
			fail("fig7", err)
		}
		if err := proteus.RenderSystems(os.Stdout, results); err != nil {
			fail("fig7", err)
		}
		writeSeries(*outDir, "fig7", results)
		writeTraces(*traceDir, "fig7", results)
	}
	if want("fig8") {
		ran = true
		section("Figure 8: SLO sensitivity (1x-3.5x)")
		points, err := proteus.Fig8(opts)
		if err != nil {
			fail("fig8", err)
		}
		if err := proteus.RenderFig8(os.Stdout, points); err != nil {
			fail("fig8", err)
		}
	}
	if want("fig9") {
		ran = true
		section("Figure 9: Proteus per-model-family breakdown")
		r, families, err := proteus.Fig9(opts)
		if err != nil {
			fail("fig9", err)
		}
		if err := proteus.RenderFig9(os.Stdout, r, families); err != nil {
			fail("fig9", err)
		}
	}
	if want("fig10") {
		ran = true
		section("Figure 10: MILP scalability (per-device formulation)")
		points, err := proteus.Fig10(proteus.Fig10Options{})
		if err != nil {
			fail("fig10", err)
		}
		if err := proteus.RenderFig10(os.Stdout, points); err != nil {
			fail("fig10", err)
		}
	}
	if want("design") {
		ran = true
		section("Design ablations: switch-cost churn control, admission control, fairness extension")
		rows, err := proteus.DesignAblations(opts)
		if err != nil {
			fail("design", err)
		}
		if err := proteus.RenderDesignAblations(os.Stdout, rows); err != nil {
			fail("design", err)
		}
	}
	if want("overload") {
		ran = true
		section("Overload robustness: no-guard vs shed-only vs degrade+shed (bursty + adversarial)")
		reports, err := proteus.OverloadRobustness(opts)
		if err != nil {
			fail("overload", err)
		}
		if err := proteus.RenderOverload(os.Stdout, reports); err != nil {
			fail("overload", err)
		}
	}
	if want("formulations") {
		ran = true
		section("MILP formulations: exact aggregated vs per-device (same optimum, different cost)")
		rows, err := proteus.CompareFormulations(nil, 0)
		if err != nil {
			fail("formulations", err)
		}
		if err := proteus.RenderFormulations(os.Stdout, rows); err != nil {
			fail("formulations", err)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "proteus-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// writeTraces dumps each system's lifecycle trace in both export formats:
// Chrome trace_event JSON (chrome://tracing, Perfetto) and JSON lines.
func writeTraces(dir, prefix string, results []proteus.SystemResult) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "proteus-bench: %v\n", err)
		return
	}
	for _, r := range results {
		if r.Trace == nil {
			continue
		}
		name := strings.ReplaceAll(r.Name, "/", "-")
		for _, ext := range []string{"json", "jsonl"} {
			path := filepath.Join(dir, fmt.Sprintf("%s_%s.%s", prefix, name, ext))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proteus-bench: %v\n", err)
				continue
			}
			if ext == "json" {
				err = r.Trace.WriteChromeTrace(f)
			} else {
				err = r.Trace.WriteJSONL(f)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "proteus-bench: %v\n", err)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func writeSeries(dir, prefix string, results []proteus.SystemResult) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "proteus-bench: %v\n", err)
		return
	}
	for _, r := range results {
		name := strings.ReplaceAll(r.Name, "/", "-")
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", prefix, name))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proteus-bench: %v\n", err)
			continue
		}
		if err := proteus.RenderSeriesCSV(f, r.Name, r.Series); err != nil {
			fmt.Fprintf(os.Stderr, "proteus-bench: %v\n", err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", path)
	}
}
