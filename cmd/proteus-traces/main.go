// Command proteus-traces synthesizes workload traces (§6.1.3) and writes
// them as CSV for use with proteus-sim, or summarizes an existing trace.
//
// Usage:
//
//	proteus-traces -kind twitter -seconds 600 -base 180 -peak 560 -out trace.csv
//	proteus-traces -kind bursty -seconds 300 -base 150 -peak 450 -out bursty.csv
//	proteus-traces -inspect trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"proteus"
	"proteus/internal/trace"
)

func main() {
	var (
		kind    = flag.String("kind", "twitter", "trace kind: twitter or bursty")
		seconds = flag.Int("seconds", 300, "trace length in seconds")
		base    = flag.Float64("base", 180, "base total QPS")
		peak    = flag.Float64("peak", 560, "peak total QPS")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "output CSV path (required unless -inspect)")
		inspect = flag.String("inspect", "", "summarize an existing trace CSV instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			fatal(err)
		}
		summarize(tr)
		return
	}

	var tr *proteus.Trace
	switch *kind {
	case "twitter":
		tr = proteus.NewTwitterTrace(proteus.TwitterTraceConfig{
			Seconds: *seconds, BaseQPS: *base, PeakQPS: *peak, Seed: *seed,
		})
	case "bursty":
		tr = proteus.NewBurstyTrace(proteus.BurstyTraceConfig{
			Seconds: *seconds, LowQPS: *base, HighQPS: *peak,
		})
	default:
		fatal(fmt.Errorf("unknown trace kind %q", *kind))
	}

	if *out == "" {
		summarize(tr)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d seconds, %d families)\n", *out, tr.Seconds(), len(tr.Families))
	summarize(tr)
}

func summarize(tr *proteus.Trace) {
	fmt.Printf("seconds=%d families=%d mean=%.1fqps peak=%.1fqps\n",
		tr.Seconds(), len(tr.Families), tr.MeanQPS(), tr.PeakQPS())
	for f, name := range tr.Families {
		total := 0.0
		for t := 0; t < tr.Seconds(); t++ {
			total += tr.FamilyQPS(t, f)
		}
		fmt.Printf("  %-14s mean=%.1fqps\n", name, total/float64(tr.Seconds()))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "proteus-traces: %v\n", err)
	os.Exit(1)
}
