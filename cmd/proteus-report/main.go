// Command proteus-report renders run dumps and compares benchmark
// baselines.
//
// Report mode turns a run dump (written by proteus-sim -tsdb or the report
// package) into a self-contained HTML page — inline SVG charts, no
// scripts:
//
//	proteus-report -dump run.json -o report.html
//
// Incident mode renders a flight-recorder incident bundle (written by
// proteus-sim -incidents or proteusd -incident-dir) the same way:
//
//	proteus-report -incident incident-000001-slo_burn.json -o incident.html
//
// Compare mode diffs two proteus-benchjson baselines and fails (exit 1)
// when any benchmark's ns/op regressed beyond the threshold:
//
//	proteus-report -compare old.json new.json -threshold 0.25 -filter 'Disabled'
//
// Baselines from different goos/goarch are refused unless -force is given.
// Exit codes: 0 ok, 1 regression or runtime error, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"proteus/internal/flightrec"
	"proteus/internal/report"
)

func main() {
	var (
		dumpPath  = flag.String("dump", "", "run dump JSON to render as HTML")
		incPath   = flag.String("incident", "", "incident bundle JSON to render as HTML")
		outPath   = flag.String("o", "report.html", "output path for the HTML report")
		compare   = flag.Bool("compare", false, "compare two benchjson baselines: proteus-report -compare old.json new.json")
		threshold = flag.Float64("threshold", 0.25, "relative ns/op growth that counts as a regression (0.25 = +25%)")
		filterRe  = flag.String("filter", "", "regexp restricting -compare to matching benchmark names")
		force     = flag.Bool("force", false, "compare baselines even when goos/goarch differ")
	)
	flag.Parse()
	args := flag.Args()
	// Allow `-compare old.json new.json -threshold 0.25 ...`: stdlib flag
	// parsing stops at the first positional argument, so re-parse anything
	// after the two baseline paths as flags.
	if *compare && len(args) > 2 {
		flag.CommandLine.Parse(args[2:])
		args = args[:2]
	}

	switch {
	case *compare:
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "proteus-report: -compare needs exactly two baseline files")
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(runCompare(args[0], args[1], *threshold, *filterRe, *force))
	case *dumpPath != "":
		if err := runReport(*dumpPath, *outPath); err != nil {
			fmt.Fprintf(os.Stderr, "proteus-report: %v\n", err)
			os.Exit(1)
		}
	case *incPath != "":
		if err := runIncident(*incPath, *outPath); err != nil {
			fmt.Fprintf(os.Stderr, "proteus-report: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "proteus-report: need -dump run.json, -incident bundle.json, or -compare old.json new.json")
		flag.Usage()
		os.Exit(2)
	}
}

func runReport(dumpPath, outPath string) error {
	d, err := report.ReadDumpFile(dumpPath)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, report.RenderHTML(d), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func runIncident(incPath, outPath string) error {
	b, err := flightrec.ReadBundleFile(incPath)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, report.RenderIncident(b), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func runCompare(oldPath, newPath string, threshold float64, filter string, force bool) int {
	var re *regexp.Regexp
	if filter != "" {
		var err error
		re, err = regexp.Compile(filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proteus-report: bad -filter: %v\n", err)
			return 2
		}
	}
	old, err := report.ReadBaselineFile(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteus-report: %v\n", err)
		return 1
	}
	new, err := report.ReadBaselineFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteus-report: %v\n", err)
		return 1
	}
	c, err := report.Compare(old, new, threshold, re, force)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteus-report: %v\n", err)
		return 1
	}
	c.Format(os.Stdout, threshold)
	if c.Regressions > 0 {
		return 1
	}
	return 0
}
