// Command proteus-explain attributes SLO violations from a lifecycle trace.
//
// It reads a JSONL trace (written by proteus-sim -trace or the telemetry
// tracer), runs the deterministic attribution engine, and prints the worst
// violated queries' latency waterfalls plus per-family and per-window blame
// tables:
//
//	proteus-explain -trace trace.jsonl -k 10
//
// Passing the matching run dump joins the controller's plan audit (naming
// the trigger behind stale_plan blames) and the tracer's ring-wrap eviction
// count:
//
//	proteus-explain -trace trace.jsonl -dump run.json
//
// -json emits the full attribution report as JSON instead; the output is
// byte-identical across same-seed runs (the CI attribution smoke diffs it).
// -query drills into one query id. Exit codes: 0 ok, 1 runtime error,
// 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"proteus/internal/attrib"
	"proteus/internal/report"
	"proteus/internal/telemetry"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "lifecycle trace JSONL (required)")
		dumpPath  = flag.String("dump", "", "run dump JSON: joins plan history and trace-drop counts")
		topK      = flag.Int("k", 10, "number of worst violated queries to print")
		asJSON    = flag.Bool("json", false, "emit the full attribution report as JSON")
		queryID   = flag.Uint64("query", 0, "drill into one query id (0 = off)")
		window    = flag.Duration("window", 0, "summary window width (default 10s)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "proteus-explain: -trace trace.jsonl is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *tracePath, *dumpPath, *topK, *asJSON, *queryID, *window); err != nil {
		fmt.Fprintf(os.Stderr, "proteus-explain: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, tracePath, dumpPath string, topK int, asJSON bool, queryID uint64, window time.Duration) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	events, err := telemetry.ReadJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	in := attrib.Input{Events: events, Window: window}
	if dumpPath != "" {
		d, err := report.ReadDumpFile(dumpPath)
		if err != nil {
			return err
		}
		in.Plans = d.Plans
		for _, fam := range d.Families {
			in.FamilyNames = append(in.FamilyNames, fam.Name)
		}
		if d.Attribution != nil {
			in.TraceDropped = d.Attribution.TraceDropped
		}
	}
	rep := attrib.Analyze(in)

	if queryID != 0 {
		exp := findQuery(rep, queryID)
		if exp == nil {
			return fmt.Errorf("query %d not in trace (or unfinished)", queryID)
		}
		if asJSON {
			return writeJSON(w, exp)
		}
		writeWaterfall(w, exp, in.FamilyNames)
		return nil
	}
	if asJSON {
		return writeJSON(w, rep)
	}
	writeText(w, rep, in.FamilyNames, topK)
	return nil
}

func findQuery(rep *attrib.Report, id uint64) *attrib.Explanation {
	for i := range rep.Queries {
		if rep.Queries[i].Query == id {
			return &rep.Queries[i]
		}
	}
	return nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeText prints the human report: run totals, blame tables, and the
// top-K violated waterfalls. All ordering comes from the report itself, so
// the bytes are stable across same-seed runs.
func writeText(w io.Writer, rep *attrib.Report, names []string, topK int) {
	fmt.Fprintf(w, "attributed %d queries: %d violated, %d unfinished\n",
		len(rep.Queries), len(rep.Violated), rep.Unfinished)
	if rep.Incomplete {
		fmt.Fprintf(w, "WARNING: explanation incomplete: trace truncated (%d events evicted)\n",
			rep.TraceDropped)
	}
	if len(rep.Families) > 0 {
		fmt.Fprintf(w, "\nper-family blame:\n")
		for _, f := range rep.Families {
			if f.Queries == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-16s %6d queries %6d violated (%d late, %d dropped)\n",
				famName(names, f.Family), f.Queries, f.Violated, f.Late, f.Dropped)
			for _, b := range f.Blames {
				fmt.Fprintf(w, "    %-20s %d\n", b.Blame, b.Count)
			}
		}
	}
	if len(rep.Windows) > 0 {
		fmt.Fprintf(w, "\nper-window violations:\n")
		for _, win := range rep.Windows {
			if win.Queries == 0 {
				continue
			}
			top := ""
			if len(win.Blames) > 0 {
				top = fmt.Sprintf("  top %s (%d)", win.Blames[0].Blame, win.Blames[0].Count)
			}
			fmt.Fprintf(w, "  [%8s] %6d queries %6d violated%s\n",
				win.Start, win.Queries, win.Violated, top)
		}
	}
	if topK > len(rep.Violated) {
		topK = len(rep.Violated)
	}
	if topK > 0 {
		fmt.Fprintf(w, "\nworst %d violated queries:\n", topK)
		for i := 0; i < topK; i++ {
			fmt.Fprintln(w)
			writeWaterfall(w, &rep.Queries[rep.Violated[i]], names)
		}
	}
}

// writeWaterfall prints one query's attributed latency decomposition.
func writeWaterfall(w io.Writer, exp *attrib.Explanation, names []string) {
	fmt.Fprintf(w, "query %d (%s) %s e2e=%s", exp.Query, famName(names, exp.Family),
		exp.Outcome, exp.E2E)
	if exp.Retries > 0 {
		fmt.Fprintf(w, " retries=%d", exp.Retries)
	}
	if exp.Cause != "" {
		fmt.Fprintf(w, " cause=%s", exp.Cause)
	}
	if exp.Incomplete {
		fmt.Fprintf(w, " [incomplete]")
	}
	fmt.Fprintln(w)
	total := exp.E2E.Nanoseconds()
	for c := attrib.Component(0); c < attrib.NumComponents; c++ {
		ns := exp.Components[c]
		if ns == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = float64(ns) / float64(total) * 100
		}
		fmt.Fprintf(w, "  %-24s %12s  %5.1f%%\n", c, time.Duration(ns), pct)
	}
	fmt.Fprintf(w, "  plan %d", exp.PlanAtEnqueue)
	if exp.PlanAtEnd != exp.PlanAtEnqueue {
		fmt.Fprintf(w, " -> %d", exp.PlanAtEnd)
	}
	if exp.Episode != 0 {
		fmt.Fprintf(w, "  episode %d", exp.Episode)
	}
	if exp.Device >= 0 {
		fmt.Fprintf(w, "  device %d", exp.Device)
	}
	fmt.Fprintln(w)
	if exp.Blame != attrib.BlameNone {
		fmt.Fprintf(w, "  blame: %s — %s\n", exp.Blame, exp.Detail)
	}
}

func famName(names []string, f int32) string {
	if f >= 0 && int(f) < len(names) {
		return names[f]
	}
	return fmt.Sprintf("family%d", f)
}
