package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: proteus/internal/telemetry
cpu: AMD EPYC 7B13
BenchmarkTracerDisabled-8   	1000000000	         0.85 ns/op	       0 B/op	       0 allocs/op
BenchmarkTracerEnabled-8    	21998887	        52.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	proteus/internal/telemetry	2.1s
`

func TestParse(t *testing.T) {
	b, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if b.GoOS != "linux" || b.GoArch != "amd64" || b.Package != "proteus/internal/telemetry" {
		t.Fatalf("header: %+v", b)
	}
	if b.GoVersion == "" {
		t.Fatal("go version metadata missing")
	}
	if b.GoMaxProcs != 8 {
		t.Fatalf("gomaxprocs = %d, want 8 from the benchmark name suffix", b.GoMaxProcs)
	}
	if b.Failed {
		t.Fatal("PASS run marked failed")
	}
	if len(b.Results) != 2 {
		t.Fatalf("results: %+v", b.Results)
	}
	r := b.Results[1]
	if r.Name != "BenchmarkTracerEnabled" || r.Iterations != 21998887 || r.NsPerOp != 52.1 {
		t.Fatalf("enabled: %+v", r)
	}
	if r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics: %+v", r.Metrics)
	}
}

func TestParseFailLine(t *testing.T) {
	b, err := parse(bufio.NewScanner(strings.NewReader("FAIL\nexit status 1\n")))
	if err != nil || !b.Failed {
		t.Fatalf("err=%v failed=%v", err, b.Failed)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	if _, _, ok := parseBench("BenchmarkBroken-8 notanumber ns/op"); ok {
		t.Fatal("malformed line accepted")
	}
	if _, _, ok := parseBench("BenchmarkShort"); ok {
		t.Fatal("short line accepted")
	}
}
