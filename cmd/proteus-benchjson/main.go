// Command proteus-benchjson converts `go test -bench` text output on stdin
// into a JSON baseline on stdout, so CI can archive benchmark numbers (e.g.
// BENCH_telemetry.json, the tracer-on vs tracer-off hot-path cost) in a
// machine-diffable form:
//
//	go test -bench . -benchtime 1x ./internal/telemetry/ | proteus-benchjson > BENCH_telemetry.json
//
// Each benchmark line becomes one entry with the name (GOMAXPROCS suffix
// stripped), iteration count, ns/op, and any extra metrics Go reports
// (B/op, allocs/op, custom ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"proteus/internal/buildinfo"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type baseline struct {
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	// GoVersion, GoMaxProcs and Commit identify the toolchain and source
	// revision that produced the numbers, so comparison tools can refuse
	// apples-to-oranges diffs. GoMaxProcs comes from the benchmark name
	// suffix (BenchmarkX-8) when present, else from the converting process.
	GoVersion  string `json:"go_version,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	Commit     string `json:"commit,omitempty"`
	// Dirty marks baselines built from a modified working tree — their
	// Commit alone does not reproduce them.
	Dirty     bool     `json:"dirty,omitempty"`
	Package   string   `json:"pkg,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Results   []result `json:"results"`
	Failed    bool     `json:"failed,omitempty"`
	RawFooter string   `json:"-"`
}

func main() {
	b, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "proteus-benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		fmt.Fprintf(os.Stderr, "proteus-benchjson: %v\n", err)
		os.Exit(1)
	}
	if b.Failed {
		os.Exit(1)
	}
}

// parse consumes the standard `go test -bench` text format: header lines
// (goos/goarch/pkg/cpu), one line per benchmark, then ok/FAIL.
func parse(sc *bufio.Scanner) (*baseline, error) {
	b := &baseline{
		Results:    []result{},
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     buildinfo.Get().Revision,
		Dirty:      buildinfo.Get().Modified,
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			b.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			b.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			b.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			b.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, procs, ok := parseBench(line)
			if ok {
				b.Results = append(b.Results, r)
				if procs > 0 {
					// The bench ran under this GOMAXPROCS, which trumps the
					// converting process's setting.
					b.GoMaxProcs = procs
				}
			}
		case strings.HasPrefix(line, "FAIL"):
			b.Failed = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// parseBench parses one benchmark result line, e.g.
//
//	BenchmarkTracerEnabled-8   1000000   52.1 ns/op   0 B/op   0 allocs/op
//
// The second return is the GOMAXPROCS suffix (0 when the name has none).
func parseBench(line string) (result, int, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, 0, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
			procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, 0, false
	}
	r := result{Name: name, Iterations: iters}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, procs, true
}
