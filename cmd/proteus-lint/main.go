// Command proteus-lint runs the project's static invariant checkers (see
// internal/analysis) over the module and reports findings with file:line:col
// positions and check IDs. It exits 1 when any finding is reported and 2 on
// load or usage errors, so CI can gate on a clean tree:
//
//	go run ./cmd/proteus-lint ./...
//
// Beyond the default text report it speaks machine-readable formats and
// carries the audit tooling for suppressions:
//
//	-json             emit findings as JSON
//	-sarif            emit findings as SARIF 2.1.0 (code-scanning ingestion)
//	-baseline FILE    suppress findings recorded in FILE; exit 1 only on new ones
//	-write-baseline FILE  record current findings as the accepted baseline
//	-allows           list every //lint:allow directive with file:line and reason
//	-checks           list registered checks
//
// Findings are suppressed per line with a `//lint:allow <check> <reason>`
// comment on the offending line or the line directly above it; the reason is
// mandatory (enforced by the allowreason check).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"proteus/internal/analysis"
)

func main() {
	checks := flag.Bool("checks", false, "list registered checks and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	allows := flag.Bool("allows", false, "list every //lint:allow suppression with file:line and reason, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: proteus-lint [-checks] [-json|-sarif] [-baseline file] [-write-baseline file] [-allows] [packages]\n\npackages are ./..., ./dir/... or ./dir patterns (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "proteus-lint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-lint:", err)
		os.Exit(2)
	}
	mod, err := analysis.NewModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-lint:", err)
		os.Exit(2)
	}
	registry := analysis.DefaultRegistry(mod.Path)

	if *checks {
		for _, c := range registry.Checkers() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Doc())
		}
		for _, c := range registry.ModuleCheckers() {
			fmt.Printf("%-16s %s (whole-module)\n", c.Name(), c.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *allows {
		_, pkgs, err := analysis.LoadModule(root, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proteus-lint:", err)
			os.Exit(2)
		}
		rel := func(fn string) string { return relPath(root, fn) }
		if err := analysis.WriteAllows(os.Stdout, analysis.CollectDirectives(pkgs), rel); err != nil {
			fmt.Fprintln(os.Stderr, "proteus-lint:", err)
			os.Exit(2)
		}
		return
	}

	findings, err := registry.Run(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-lint:", err)
		os.Exit(2)
	}
	for i := range findings {
		findings[i].Pos.Filename = relPath(root, findings[i].Pos.Filename)
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proteus-lint:", err)
			os.Exit(2)
		}
		if err := analysis.NewBaseline(findings).WriteBaseline(f); err != nil {
			fmt.Fprintln(os.Stderr, "proteus-lint:", err)
			os.Exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "proteus-lint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "proteus-lint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	suppressed := 0
	if *baselinePath != "" {
		baseline, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "proteus-lint:", err)
			os.Exit(2)
		}
		findings, suppressed = baseline.Filter(findings)
	}

	switch {
	case *jsonOut:
		err = analysis.WriteJSON(os.Stdout, findings)
	case *sarifOut:
		err = analysis.WriteSARIF(os.Stdout, findings, registry.Rules())
	default:
		err = analysis.WriteText(os.Stdout, findings)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-lint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "proteus-lint: %d new finding(s) (%d baselined)\n", len(findings), suppressed)
		} else {
			fmt.Fprintf(os.Stderr, "proteus-lint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relPath shortens filename to be root-relative when possible.
func relPath(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return filename
}
