// Command proteus-lint runs the project's static invariant checkers (see
// internal/analysis) over the module and reports findings with file:line:col
// positions and check IDs. It exits 1 when any finding is reported and 2 on
// load or usage errors, so CI can gate on a clean tree:
//
//	go run ./cmd/proteus-lint ./...
//
// Findings are suppressed per line with a `//lint:allow <check> [reason]`
// comment on the offending line or the line directly above it. Use -checks to
// list the registered checkers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"proteus/internal/analysis"
)

func main() {
	checks := flag.Bool("checks", false, "list registered checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: proteus-lint [-checks] [packages]\n\npackages are ./..., ./dir/... or ./dir patterns (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-lint:", err)
		os.Exit(2)
	}
	mod, err := analysis.NewModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-lint:", err)
		os.Exit(2)
	}
	registry := analysis.DefaultRegistry(mod.Path)

	if *checks {
		for _, c := range registry.Checkers() {
			fmt.Printf("%-16s %s\n", c.Name(), c.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := registry.Run(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proteus-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		f.Pos.Filename = relPath(root, f.Pos.Filename)
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "proteus-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relPath shortens filename to be root-relative when possible.
func relPath(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return filename
}
