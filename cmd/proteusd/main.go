// Command proteusd starts the live Proteus serving cluster: goroutine
// workers standing in for the paper's 40 machines, the MILP resource
// manager re-allocating in the background, and an HTTP API:
//
//	POST /v1/query?family=resnet   serve one inference query
//	GET  /v1/stats                 run metrics so far
//	GET  /v1/allocation            current device → variant plan
//	GET  /v1/families              registered applications
//	GET  /metrics                  counter/gauge snapshot (text key-value)
//	GET  /healthz                  device health mask (503 when all down)
//	GET  /debug/allocations        controller decision audit log (JSON)
//	GET  /debug/pprof/             Go runtime profiles
//
// With -drive it also generates client load against itself for the given
// duration and prints the resulting summary, exercising the full data path
// end to end.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"proteus"
	"proteus/internal/numeric"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		clusterSz = flag.Int("cluster", 8, "cluster size (2:1:1 CPU:1080Ti:V100)")
		devices   = flag.String("devices", "", `explicit fleet as "type:count" pairs, e.g. "cpu:4,v100:2" (overrides -cluster)`)
		allocName = flag.String("allocation", "ilp", "resource allocator (ilp, infaas_v2, sommelier, clipper-ht, clipper-ha)")
		batchName = flag.String("batching", "accscale", "batching policy (accscale, nexus, aimd, static-N)")
		period    = flag.Duration("period", 10*time.Second, "re-allocation period")
		drive     = flag.Duration("drive", 0, "self-drive duration (0 = serve forever)")
		driveQPS  = flag.Float64("drive-qps", 100, "total QPS during self-drive")
		seed      = flag.Uint64("seed", 1, "random seed")
		solverPar = flag.Int("solver-parallelism", 0, "concurrent LP solvers per allocation MILP solve; plans are identical for any value ≥ 1 (1 = serial, 0 = all cores)")
	)
	flag.Parse()

	cl := proteus.ScaledTestbed(*clusterSz)
	if *devices != "" {
		var err error
		cl, err = parseDevices(*devices)
		if err != nil {
			fatal(err)
		}
	}
	alloc, err := proteus.NewAllocator(*allocName, &proteus.MILPOptions{Parallelism: *solverPar})
	if err != nil {
		fatal(err)
	}
	batch, err := proteus.NewBatching(*batchName)
	if err != nil {
		fatal(err)
	}
	fams := proteus.Zoo()
	names := proteus.FamilyNames(fams)
	z := numeric.NewZipf(len(fams), 1.001)
	initial := make([]float64, len(fams))
	for q := range initial {
		initial[q] = *driveQPS * z.P(q)
	}
	srv, err := proteus.NewLiveServer(proteus.LiveConfig{
		Cluster:       cl,
		Families:      fams,
		Allocator:     alloc,
		Batching:      batch,
		ControlPeriod: *period,
		InitialDemand: initial,
		Seed:          *seed,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	if *drive > 0 {
		fmt.Printf("self-driving %v at %.0f QPS across %d families...\n", *drive, *driveQPS, len(fams))
		driveLoad(srv, names, *driveQPS, *drive, *seed)
		s := srv.Summary()
		fmt.Println(s)
		fmt.Println("per-device allocation:")
		printAllocation(srv)
		return
	}

	fmt.Printf("proteusd: serving %d families on %d devices at %s (allocation=%s batching=%s)\n",
		len(fams), cl.Size(), *addr, *allocName, *batchName)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

// driveLoad fires Poisson traffic at the server's internal API.
func driveLoad(srv *proteus.LiveServer, families []string, qps float64, d time.Duration, seed uint64) {
	rng := numeric.NewRNG(seed + 99)
	z := numeric.NewZipf(len(families), 1.001)
	var wg sync.WaitGroup
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		gap := rng.Exp(qps)
		time.Sleep(time.Duration(gap * float64(time.Second)))
		fam := families[z.Sample(rng)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Infer(fam)
		}()
	}
	wg.Wait()
}

func printAllocation(srv *proteus.LiveServer) {
	alloc := srv.Allocation()
	devices := make([]string, 0, len(alloc))
	for d := range alloc {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	for _, d := range devices {
		v := alloc[d]
		if v == "" {
			v = "(idle)"
		}
		fmt.Printf("  %-14s %s\n", d, v)
	}
}

// parseDevices turns "cpu:4,v100:2" into a validated cluster. Unknown device
// types come back as errors, not panics.
func parseDevices(spec string) (*proteus.Cluster, error) {
	var counts []proteus.TypeCount
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		typ, cnt, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-devices entry %q: want type:count", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(cnt))
		if err != nil {
			return nil, fmt.Errorf("-devices entry %q: bad count: %v", part, err)
		}
		counts = append(counts, proteus.TypeCount{
			Type:  proteus.DeviceType(strings.TrimSpace(typ)),
			Count: n,
		})
	}
	return proteus.NewClusterFromSpec(counts)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "proteusd: %v\n", err)
	os.Exit(1)
}
