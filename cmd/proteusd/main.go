// Command proteusd starts the live Proteus serving cluster: goroutine
// workers standing in for the paper's 40 machines, the MILP resource
// manager re-allocating in the background, and an HTTP API:
//
//	POST /v1/query?family=resnet   serve one inference query
//	GET  /v1/stats                 run metrics so far
//	GET  /v1/allocation            current device → variant plan
//	GET  /v1/families              registered applications
//	GET  /metrics                  counter/gauge snapshot (text key-value)
//	GET  /healthz                  device health mask (503 when all down)
//	GET  /debug/allocations        controller decision audit log (JSON)
//	GET  /debug/incidents          retained flight-recorder incident bundles
//	POST /debug/incident           trigger a manual incident bundle
//	GET  /debug/query?id=N         live SLO attribution for one query
//	GET  /debug/pprof/             Go runtime profiles
//
// /metrics also speaks Prometheus text exposition format (0.0.4) under
// content negotiation: an Accept header naming version=0.0.4 or
// openmetrics, or ?format=prometheus, selects it. -incident-dir enables
// the black-box flight recorder: SLO burn starts, overload degradations,
// allocator fallbacks, device failures, and manual POSTs snapshot recent
// observability state into incident bundle JSON files there.
//
// With -drive it also generates client load against itself for the given
// duration and prints the resulting summary, exercising the full data path
// end to end.
//
// SIGINT/SIGTERM trigger a graceful drain: the server stops admitting,
// in-flight batches finish (bounded by -drain-timeout), final outputs are
// written (-metrics-out, -tsdb-out), and the process exits 0. -overload
// enables the fast-path overload guard; /healthz then reports per-device
// saturation and any active emergency-degradation episode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"proteus"
	"proteus/internal/numeric"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		clusterSz  = flag.Int("cluster", 8, "cluster size (2:1:1 CPU:1080Ti:V100)")
		devices    = flag.String("devices", "", `explicit fleet as "type:count" pairs, e.g. "cpu:4,v100:2" (overrides -cluster)`)
		allocName  = flag.String("allocation", "ilp", "resource allocator (ilp, infaas_v2, sommelier, clipper-ht, clipper-ha)")
		batchName  = flag.String("batching", "accscale", "batching policy (accscale, nexus, aimd, static-N)")
		period     = flag.Duration("period", 10*time.Second, "re-allocation period")
		drive      = flag.Duration("drive", 0, "self-drive duration (0 = serve forever)")
		driveQPS   = flag.Float64("drive-qps", 100, "total QPS during self-drive")
		seed       = flag.Uint64("seed", 1, "random seed")
		solverPar  = flag.Int("solver-parallelism", 0, "concurrent LP solvers per allocation MILP solve; plans are identical for any value ≥ 1 (1 = serial, 0 = all cores)")
		drainTO    = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown bound: how long SIGINT/SIGTERM waits for in-flight queries")
		maxRetries = flag.Int("max-retries", 1, "per-query re-route budget after a device failure (0 drops stranded queries immediately)")
		overloadOn = flag.Bool("overload", false, "enable the overload guard: deadline admission control, backpressure, emergency accuracy degradation")
		metricsOut = flag.String("metrics-out", "", "write the final counter snapshot here on shutdown")
		tsdbOut    = flag.String("tsdb-out", "", "write the final run dump JSON here on shutdown")
		incDir     = flag.String("incident-dir", "", "enable the flight recorder and write incident bundles to this directory")
	)
	flag.Parse()

	cl := proteus.ScaledTestbed(*clusterSz)
	if *devices != "" {
		var err error
		cl, err = parseDevices(*devices)
		if err != nil {
			fatal(err)
		}
	}
	alloc, err := proteus.NewAllocator(*allocName, &proteus.MILPOptions{Parallelism: *solverPar})
	if err != nil {
		fatal(err)
	}
	batch, err := proteus.NewBatching(*batchName)
	if err != nil {
		fatal(err)
	}
	fams := proteus.Zoo()
	names := proteus.FamilyNames(fams)
	z := numeric.NewZipf(len(fams), 1.001)
	initial := make([]float64, len(fams))
	for q := range initial {
		initial[q] = *driveQPS * z.P(q)
	}
	registry := proteus.NewTelemetryRegistry()
	var recorder *proteus.TSDBRecorder
	if *tsdbOut != "" || *overloadOn || *incDir != "" {
		// The guard's degradation path is triggered by the burn monitor, so
		// -overload needs a recorder even when no dump was requested; the
		// flight recorder samples it too.
		recorder = proteus.NewTSDBRecorder(proteus.TSDBConfig{})
	}
	// A bounded tracer is always on: it feeds GET /debug/query live SLO
	// attribution, the run dump's attribution section, and — when an
	// incident dir is configured — the bundle's trace tail.
	tracer := proteus.NewTracer(1 << 16)
	var flight *proteus.FlightRecorder
	if *incDir != "" {
		if err := os.MkdirAll(*incDir, 0o755); err != nil {
			fatal(err)
		}
		// Live mode adds process runtime snapshots and allows pprof capture
		// via POST /debug/incident?profile=cpu,heap.
		flight = proteus.NewFlightRecorder(proteus.FlightConfig{Dir: *incDir, Live: true})
	}
	var guard *proteus.OverloadConfig
	if *overloadOn {
		guard = &proteus.OverloadConfig{Enabled: true}
	}
	mr := *maxRetries
	if mr <= 0 {
		mr = -1 // explicit zero budget (0 means "default" inside the config)
	}
	srv, err := proteus.NewLiveServer(proteus.LiveConfig{
		Cluster:       cl,
		Families:      fams,
		Allocator:     alloc,
		Batching:      batch,
		ControlPeriod: *period,
		InitialDemand: initial,
		Telemetry:     registry,
		Tracer:        tracer,
		TSDB:          recorder,
		Flight:        flight,
		Overload:      guard,
		MaxRetries:    mr,
		Seed:          *seed,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	if *drive > 0 {
		fmt.Printf("self-driving %v at %.0f QPS across %d families...\n", *drive, *driveQPS, len(fams))
		driveLoad(srv, names, *driveQPS, *drive, *seed)
		s := srv.Summary()
		fmt.Println(s)
		fmt.Println("per-device allocation:")
		printAllocation(srv)
		srv.Drain(*drainTO)
		writeFinal(srv, registry, recorder, tracer, cl, *metricsOut, *tsdbOut, *seed)
		return
	}

	fmt.Printf("proteusd: serving %d families on %d devices at %s (allocation=%s batching=%s)\n",
		len(fams), cl.Size(), *addr, *allocName, *batchName)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case got := <-sig:
		fmt.Printf("proteusd: received %s, draining (%d in flight, timeout %v)\n",
			got, srv.Inflight(), *drainTO)
		if srv.Drain(*drainTO) {
			fmt.Println("proteusd: drained cleanly")
		} else {
			fmt.Printf("proteusd: drain timeout hit with %d queries still in flight\n", srv.Inflight())
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		writeFinal(srv, registry, recorder, tracer, cl, *metricsOut, *tsdbOut, *seed)
	}
}

// writeFinal dumps the run's observability outputs at shutdown: the counter
// snapshot and the full run dump (windowed metrics, device time-series, SLO
// burn log, decision audit).
func writeFinal(srv *proteus.LiveServer, registry *proteus.TelemetryRegistry, recorder *proteus.TSDBRecorder, tracer *proteus.Tracer, cl *proteus.Cluster, metricsOut, tsdbOut string, seed uint64) {
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := registry.WriteText(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsOut)
	}
	if tsdbOut != "" && recorder != nil {
		var devNames []string
		for _, d := range cl.Devices() {
			devNames = append(devNames, d.Name)
		}
		dump := proteus.BuildRunDump(proteus.RunDumpInput{
			Label:        "proteusd",
			Seed:         seed,
			Collector:    srv.Collector(),
			Recorder:     recorder,
			Plans:        srv.History(),
			DeviceNames:  devNames,
			Events:       tracer.Events(),
			TraceDropped: tracer.Dropped(),
		})
		if err := dump.WriteFile(tsdbOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d samples, %d burn transitions)\n", tsdbOut, len(dump.Samples), len(dump.Burns))
	}
}

// driveLoad fires Poisson traffic at the server's internal API.
func driveLoad(srv *proteus.LiveServer, families []string, qps float64, d time.Duration, seed uint64) {
	rng := numeric.NewRNG(seed + 99)
	z := numeric.NewZipf(len(families), 1.001)
	var wg sync.WaitGroup
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		gap := rng.Exp(qps)
		time.Sleep(time.Duration(gap * float64(time.Second)))
		fam := families[z.Sample(rng)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Infer(fam)
		}()
	}
	wg.Wait()
}

func printAllocation(srv *proteus.LiveServer) {
	alloc := srv.Allocation()
	devices := make([]string, 0, len(alloc))
	for d := range alloc {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	for _, d := range devices {
		v := alloc[d]
		if v == "" {
			v = "(idle)"
		}
		fmt.Printf("  %-14s %s\n", d, v)
	}
}

// parseDevices turns "cpu:4,v100:2" into a validated cluster. Unknown device
// types come back as errors, not panics.
func parseDevices(spec string) (*proteus.Cluster, error) {
	var counts []proteus.TypeCount
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		typ, cnt, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-devices entry %q: want type:count", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(cnt))
		if err != nil {
			return nil, fmt.Errorf("-devices entry %q: bad count: %v", part, err)
		}
		counts = append(counts, proteus.TypeCount{
			Type:  proteus.DeviceType(strings.TrimSpace(typ)),
			Count: n,
		})
	}
	return proteus.NewClusterFromSpec(counts)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "proteusd: %v\n", err)
	os.Exit(1)
}
