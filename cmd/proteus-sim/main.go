// Command proteus-sim runs one inference-serving simulation from a JSON
// configuration file, mirroring the paper artifact's config-driven workflow
// (model_allocation and batching take the artifact's values: ilp,
// infaas_v2, sommelier, clipper-ht/-ha; accscale, aimd, nexus, static-N).
//
// Example config:
//
//	{
//	  "model_allocation": "ilp",
//	  "batching": "accscale",
//	  "cluster_size": 20,
//	  "slo_multiplier": 2,
//	  "seed": 1,
//	  "trace": {"kind": "twitter", "seconds": 300, "base_qps": 180, "peak_qps": 560}
//	}
//
// A trace may also come from a CSV file written by proteus-traces:
//
//	"trace": {"kind": "csv", "path": "trace.csv"}
//
// Observability flags: -timeseries out.csv dumps the per-bin metric series,
// -trace out.json (or .jsonl) dumps the per-query lifecycle trace — byte
// identical across runs with the same config and seed — and -metrics out.txt
// dumps the final counter snapshot. -tsdb run.json writes the full run dump
// (windowed percentiles, device utilization time-series, SLO burn log,
// decision audit) and -report out.html renders it as a self-contained HTML
// page (proteus-report renders the same from a saved dump); both are byte
// identical across same-seed runs. -incidents DIR enables the black-box
// flight recorder: every SLO burn start, overload degradation, allocator
// fallback, and device failure snapshots the recent trace / counter /
// time-series / plan state into DIR as an incident bundle JSON, also byte
// identical across same-seed runs. The optional "slo" config block tunes
// the burn monitor, e.g.
//
//	"slo": {"target": 0.01, "burn_rate": 2, "short_window_s": 5,
//	        "long_window_s": 60, "sample_interval_s": 1, "realloc": false}
//
// The optional "overload" block enables the fast-path overload guard
// (deadline admission control, mailbox backpressure, burn-triggered
// emergency accuracy degradation between control periods):
//
//	"overload": {"enabled": true, "high_water": 64, "low_water": 32,
//	             "restore_hold_s": 5, "escalate_after_s": 10,
//	             "redegrade_cooldown_s": 10}
//
// and "max_retries" sets the per-query re-route budget after a device
// failure (default 1; an explicit 0 drops stranded queries immediately).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"proteus"
	"proteus/internal/trace"
)

type config struct {
	ModelAllocation string  `json:"model_allocation"`
	Batching        string  `json:"batching"`
	ClusterSize     int     `json:"cluster_size"`
	SLOMultiplier   float64 `json:"slo_multiplier"`
	Seed            uint64  `json:"seed"`
	SolverBudgetMS  int     `json:"solver_budget_ms"`
	// SolverParallelism is the number of concurrent LP-relaxation solvers
	// per allocation MILP solve. Plans are byte-identical for every value
	// ≥ 1 (extra workers only shorten solve wall-clock time); 1 is fully
	// serial, 0 (the default) uses all cores.
	SolverParallelism int `json:"solver_parallelism"`
	// SolverColdStart disables carrying the previous control period's
	// optimal simplex basis into the next MILP solve. Warm starts change
	// only solve wall-clock time, never the plan; the knob exists for A/B
	// measurement of the warm-start path.
	SolverColdStart bool        `json:"solver_cold_start"`
	Trace           traceConfig `json:"trace"`
	// Devices overrides cluster_size with an explicit fleet, e.g.
	// [{"type": "cpu", "count": 4}, {"type": "v100", "count": 2}].
	// Unknown device types are a config error, not a crash.
	Devices []deviceConfig `json:"devices"`
	// Faults optionally injects device failures during the run.
	Faults *faultConfig `json:"faults"`
	// SLO tunes the burn-rate monitor backing -tsdb/-report; zero fields
	// take the recorder's defaults (1% budget, 2x burn over 5s/60s windows,
	// 1s sampling).
	SLO *sloConfig `json:"slo"`
	// Overload enables the fast-path overload guard. The degradation path
	// needs the burn monitor, so pair it with -tsdb/-report or an "slo"
	// block when degradation matters.
	Overload *overloadConfig `json:"overload"`
	// MaxRetries is the per-query re-route budget after a device failure.
	// Absent means the default (1); an explicit 0 drops stranded queries
	// immediately.
	MaxRetries *int `json:"max_retries"`
}

type overloadConfig struct {
	Enabled             bool    `json:"enabled"`
	DisableAdmission    bool    `json:"disable_admission"`
	DisableBackpressure bool    `json:"disable_backpressure"`
	DisableDegradation  bool    `json:"disable_degradation"`
	HighWater           int     `json:"high_water"`
	LowWater            int     `json:"low_water"`
	RestoreHoldS        float64 `json:"restore_hold_s"`
	EscalateAfterS      float64 `json:"escalate_after_s"`
	RedegradeCooldownS  float64 `json:"redegrade_cooldown_s"`
}

// buildOverload maps the JSON block onto the guard configuration.
func buildOverload(oc *overloadConfig) *proteus.OverloadConfig {
	if oc == nil {
		return nil
	}
	sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
	return &proteus.OverloadConfig{
		Enabled:             oc.Enabled,
		DisableAdmission:    oc.DisableAdmission,
		DisableBackpressure: oc.DisableBackpressure,
		DisableDegradation:  oc.DisableDegradation,
		HighWater:           oc.HighWater,
		LowWater:            oc.LowWater,
		RestoreHold:         sec(oc.RestoreHoldS),
		EscalateAfter:       sec(oc.EscalateAfterS),
		RedegradeCooldown:   sec(oc.RedegradeCooldownS),
	}
}

type sloConfig struct {
	Target          float64 `json:"target"`
	BurnRate        float64 `json:"burn_rate"`
	ShortWindowS    float64 `json:"short_window_s"`
	LongWindowS     float64 `json:"long_window_s"`
	SampleIntervalS float64 `json:"sample_interval_s"`
	// Realloc lets a burn start trigger an early re-allocation (off by
	// default).
	Realloc bool `json:"realloc"`
}

type deviceConfig struct {
	Type  string `json:"type"`
	Count int    `json:"count"`
}

// faultConfig selects one of three fault-injection modes: a fractional kill
// (kill_fraction + fail_at_seconds [+ recover_at_seconds]), explicit events,
// or seeded random MTBF/MTTR injection.
type faultConfig struct {
	KillFraction     float64            `json:"kill_fraction"`
	FailAtSeconds    float64            `json:"fail_at_seconds"`
	RecoverAtSeconds float64            `json:"recover_at_seconds"`
	Events           []faultEventConfig `json:"events"`
	MTBFSeconds      float64            `json:"mtbf_seconds"`
	MTTRSeconds      float64            `json:"mttr_seconds"`
	Seed             uint64             `json:"seed"`
}

type faultEventConfig struct {
	Device           int     `json:"device"`
	FailAtSeconds    float64 `json:"fail_at_seconds"`
	RecoverAtSeconds float64 `json:"recover_at_seconds"`
}

type traceConfig struct {
	Kind    string  `json:"kind"` // twitter, bursty, adversarial, csv
	Seconds int     `json:"seconds"`
	BaseQPS float64 `json:"base_qps"`
	PeakQPS float64 `json:"peak_qps"`
	Path    string  `json:"path"`
	Seed    uint64  `json:"seed"`
	// Adversarial-kind knobs: spike height (peak_qps is the fallback),
	// spike length and spacing in seconds.
	SpikeSeconds  int `json:"spike_seconds"`
	PeriodSeconds int `json:"period_seconds"`
}

// buildCluster resolves the fleet: an explicit device list (validated) when
// given, the 2:1:1 scaled testbed otherwise.
func buildCluster(cfg *config) (*proteus.Cluster, error) {
	if len(cfg.Devices) == 0 {
		return proteus.ScaledTestbed(cfg.ClusterSize), nil
	}
	var counts []proteus.TypeCount
	for _, d := range cfg.Devices {
		counts = append(counts, proteus.TypeCount{Type: proteus.DeviceType(d.Type), Count: d.Count})
	}
	return proteus.NewClusterFromSpec(counts)
}

// buildFaults turns the fault config into a schedule for the cluster.
func buildFaults(fc *faultConfig, cl *proteus.Cluster, traceSeconds int) (*proteus.FailureSchedule, error) {
	if fc == nil {
		return nil, nil
	}
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	switch {
	case len(fc.Events) > 0:
		s := &proteus.FailureSchedule{}
		for _, ev := range fc.Events {
			s.Events = append(s.Events, proteus.FailureEvent{
				Device:    ev.Device,
				FailAt:    sec(ev.FailAtSeconds),
				RecoverAt: sec(ev.RecoverAtSeconds),
			})
		}
		return s, nil
	case fc.KillFraction > 0:
		return proteus.KillFraction(cl, fc.KillFraction, sec(fc.FailAtSeconds), sec(fc.RecoverAtSeconds)), nil
	case fc.MTBFSeconds > 0 || fc.MTTRSeconds > 0:
		return proteus.RandomFailureSchedule(cl, proteus.RandomScheduleConfig{
			MTBF:    sec(fc.MTBFSeconds),
			MTTR:    sec(fc.MTTRSeconds),
			Horizon: time.Duration(traceSeconds) * time.Second,
			Seed:    fc.Seed,
		})
	}
	return nil, fmt.Errorf("faults config needs events, kill_fraction, or mtbf/mttr_seconds")
}

func main() {
	var (
		configPath = flag.String("config", "", "path to the JSON experiment config (required)")
		seriesOut  = flag.String("series", "", "deprecated alias for -timeseries")
		tsOut      = flag.String("timeseries", "", "optional CSV path for the run's per-bin time series")
		traceOut   = flag.String("trace", "", "optional path for the telemetry trace (.jsonl = JSON lines, anything else = Chrome trace_event JSON)")
		metricsOut = flag.String("metrics", "", "optional path for the final counter snapshot (text key-value)")
		tsdbOut    = flag.String("tsdb", "", "optional path for the run dump JSON (windowed metrics, device time-series, SLO burn log, decision audit)")
		reportOut  = flag.String("report", "", "optional path for the self-contained HTML run report")
		incDir     = flag.String("incidents", "", "optional directory for flight-recorder incident bundles (enables the flight recorder)")
	)
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "proteus-sim: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
	}
	applyDefaults(&cfg)

	tr, err := buildTrace(cfg.Trace)
	if err != nil {
		fatal(err)
	}
	cl, err := buildCluster(&cfg)
	if err != nil {
		fatal(err)
	}
	faults, err := buildFaults(cfg.Faults, cl, tr.Seconds())
	if err != nil {
		fatal(err)
	}
	alloc, err := proteus.NewAllocator(cfg.ModelAllocation, &proteus.MILPOptions{
		TimeLimit:   time.Duration(cfg.SolverBudgetMS) * time.Millisecond,
		RelGap:      0.005,
		Parallelism: cfg.SolverParallelism,
		ColdStart:   cfg.SolverColdStart,
	})
	if err != nil {
		fatal(err)
	}
	batch, err := proteus.NewBatching(cfg.Batching)
	if err != nil {
		fatal(err)
	}
	// The system's family set follows the trace's columns (a CSV trace may
	// cover a subset of the zoo).
	var fams []proteus.Family
	for _, name := range tr.Families {
		found := false
		for _, f := range proteus.Zoo() {
			if f.Name == name {
				fams = append(fams, f)
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("trace family %q is not in the model zoo", name))
		}
	}
	// Run dumps embed an SLO-attribution section derived from the lifecycle
	// trace, so -tsdb/-report force the tracer on alongside -trace/-incidents.
	var tracer *proteus.Tracer
	if *traceOut != "" || *incDir != "" || *tsdbOut != "" || *reportOut != "" {
		tracer = proteus.NewTracer(0)
	}
	var registry *proteus.TelemetryRegistry
	if *metricsOut != "" || *incDir != "" {
		registry = proteus.NewTelemetryRegistry()
	}
	var recorder *proteus.TSDBRecorder
	burnRealloc := false
	// The guard's degradation path is triggered by the burn monitor, so an
	// enabled overload block forces a recorder even without -tsdb/-report.
	// The flight recorder samples all three surfaces, so -incidents forces
	// the tracer, registry, and recorder on too.
	needRecorder := cfg.Overload != nil && cfg.Overload.Enabled && !cfg.Overload.DisableDegradation
	if *tsdbOut != "" || *reportOut != "" || *incDir != "" || needRecorder {
		var tc proteus.TSDBConfig
		if s := cfg.SLO; s != nil {
			sec := func(v float64) time.Duration { return time.Duration(v * float64(time.Second)) }
			tc.SampleInterval = sec(s.SampleIntervalS)
			tc.SLO = proteus.SLOConfig{
				Target:      s.Target,
				BurnRate:    s.BurnRate,
				ShortWindow: sec(s.ShortWindowS),
				LongWindow:  sec(s.LongWindowS),
			}
			burnRealloc = s.Realloc
		}
		recorder = proteus.NewTSDBRecorder(tc)
	}
	maxRetries := 0 // zero takes the system default (1)
	if cfg.MaxRetries != nil {
		if maxRetries = *cfg.MaxRetries; maxRetries <= 0 {
			maxRetries = -1 // explicit zero budget
		}
	}
	var flight *proteus.FlightRecorder
	if *incDir != "" {
		if err := os.MkdirAll(*incDir, 0o755); err != nil {
			fatal(err)
		}
		flight = proteus.NewFlightRecorder(proteus.FlightConfig{Dir: *incDir})
	}
	sys, err := proteus.NewSystem(proteus.SystemConfig{
		Cluster:        cl,
		Families:       fams,
		SLOMultiplier:  cfg.SLOMultiplier,
		Allocator:      alloc,
		Batching:       batch,
		Faults:         faults,
		Seed:           cfg.Seed,
		Tracer:         tracer,
		Telemetry:      registry,
		TSDB:           recorder,
		Flight:         flight,
		SLOBurnRealloc: burnRealloc,
		Overload:       buildOverload(cfg.Overload),
		MaxRetries:     maxRetries,
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := sys.Run(tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("allocation=%s batching=%s cluster=%d trace=%s (%ds, peak %.0f QPS)\n",
		cfg.ModelAllocation, cfg.Batching, cl.Size(), cfg.Trace.Kind, tr.Seconds(), tr.PeakQPS())
	if faults != nil {
		fmt.Printf("faults: %d scheduled events\n", len(faults.Events))
	}
	fmt.Printf("simulated in %v (wall)\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Summary)
	fmt.Printf("re-allocations=%d model-loads=%d\n", len(res.Plans), res.ModelLoads)
	for q, s := range res.PerFamily {
		fmt.Printf("  %-14s tput=%.1fqps acc=%.2f%% violations=%.4f\n",
			tr.Families[q], s.AvgThroughput, s.EffectiveAccuracy, s.ViolationRatio)
	}

	if *tsOut == "" {
		*tsOut = *seriesOut
	}
	if *tsOut != "" {
		f, err := os.Create(*tsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := proteus.RenderSeriesCSV(f, cfg.ModelAllocation, res.Collector.Series(-1)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *tsOut)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d events, %d dropped)\n", *traceOut, tracer.Len(), tracer.Dropped())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := registry.WriteText(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if recorder != nil {
		var names []string
		for _, d := range cl.Devices() {
			names = append(names, d.Name)
		}
		din := proteus.RunDumpInput{
			Label:       fmt.Sprintf("%s/%s %s", cfg.ModelAllocation, cfg.Batching, cfg.Trace.Kind),
			Seed:        cfg.Seed,
			Collector:   res.Collector,
			Recorder:    recorder,
			Plans:       res.Plans,
			DeviceNames: names,
		}
		if tracer != nil {
			din.Events = tracer.Events()
			din.TraceDropped = tracer.Dropped()
		}
		dump := proteus.BuildRunDump(din)
		if *tsdbOut != "" {
			if err := dump.WriteFile(*tsdbOut); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d samples, %d burn transitions)\n", *tsdbOut, len(dump.Samples), len(dump.Burns))
		}
		if *reportOut != "" {
			if err := os.WriteFile(*reportOut, proteus.RenderRunReport(dump), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *reportOut)
		}
	}
	if flight != nil {
		if err := flight.WriteError(); err != nil {
			fatal(fmt.Errorf("writing incident bundles: %w", err))
		}
		fmt.Printf("incidents: %d bundles in %s\n", len(flight.Incidents()), *incDir)
	}
}

// writeTrace dumps the recorded lifecycle events: JSON lines when the path
// ends in .jsonl, Chrome trace_event JSON (load into chrome://tracing or
// Perfetto) otherwise. Output is byte-stable for a fixed seed and config.
func writeTrace(path string, tr *proteus.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return tr.WriteJSONL(f)
	}
	return tr.WriteChromeTrace(f)
}

func applyDefaults(cfg *config) {
	if cfg.ModelAllocation == "" {
		cfg.ModelAllocation = "ilp"
	}
	if cfg.Batching == "" {
		cfg.Batching = "accscale"
	}
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = 20
	}
	if cfg.SLOMultiplier <= 0 {
		cfg.SLOMultiplier = 2
	}
	if cfg.SolverBudgetMS <= 0 {
		cfg.SolverBudgetMS = 500
	}
	if cfg.Trace.Kind == "" {
		cfg.Trace.Kind = "twitter"
	}
}

func buildTrace(tc traceConfig) (*proteus.Trace, error) {
	switch tc.Kind {
	case "twitter":
		return proteus.NewTwitterTrace(proteus.TwitterTraceConfig{
			Seconds: tc.Seconds, BaseQPS: tc.BaseQPS, PeakQPS: tc.PeakQPS, Seed: tc.Seed,
		}), nil
	case "bursty":
		return proteus.NewBurstyTrace(proteus.BurstyTraceConfig{
			Seconds: tc.Seconds, LowQPS: tc.BaseQPS, HighQPS: tc.PeakQPS,
		}), nil
	case "adversarial":
		return proteus.NewAdversarialTrace(proteus.AdversarialTraceConfig{
			Seconds: tc.Seconds, BaseQPS: tc.BaseQPS, SpikeQPS: tc.PeakQPS,
			SpikeSeconds: tc.SpikeSeconds, PeriodSeconds: tc.PeriodSeconds,
		}), nil
	case "csv":
		f, err := os.Open(tc.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadCSV(f)
	}
	return nil, fmt.Errorf("proteus-sim: unknown trace kind %q", tc.Kind)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "proteus-sim: %v\n", err)
	os.Exit(1)
}
