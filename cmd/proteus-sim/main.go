// Command proteus-sim runs one inference-serving simulation from a JSON
// configuration file, mirroring the paper artifact's config-driven workflow
// (model_allocation and batching take the artifact's values: ilp,
// infaas_v2, sommelier, clipper-ht/-ha; accscale, aimd, nexus, static-N).
//
// Example config:
//
//	{
//	  "model_allocation": "ilp",
//	  "batching": "accscale",
//	  "cluster_size": 20,
//	  "slo_multiplier": 2,
//	  "seed": 1,
//	  "trace": {"kind": "twitter", "seconds": 300, "base_qps": 180, "peak_qps": 560}
//	}
//
// A trace may also come from a CSV file written by proteus-traces:
//
//	"trace": {"kind": "csv", "path": "trace.csv"}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"proteus"
	"proteus/internal/trace"
)

type config struct {
	ModelAllocation string      `json:"model_allocation"`
	Batching        string      `json:"batching"`
	ClusterSize     int         `json:"cluster_size"`
	SLOMultiplier   float64     `json:"slo_multiplier"`
	Seed            uint64      `json:"seed"`
	SolverBudgetMS  int         `json:"solver_budget_ms"`
	Trace           traceConfig `json:"trace"`
}

type traceConfig struct {
	Kind    string  `json:"kind"` // twitter, bursty, csv
	Seconds int     `json:"seconds"`
	BaseQPS float64 `json:"base_qps"`
	PeakQPS float64 `json:"peak_qps"`
	Path    string  `json:"path"`
	Seed    uint64  `json:"seed"`
}

func main() {
	var (
		configPath = flag.String("config", "", "path to the JSON experiment config (required)")
		seriesOut  = flag.String("series", "", "optional CSV path for the run's time series")
	)
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "proteus-sim: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		fatal(err)
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
	}
	applyDefaults(&cfg)

	tr, err := buildTrace(cfg.Trace)
	if err != nil {
		fatal(err)
	}
	alloc, err := proteus.NewAllocator(cfg.ModelAllocation, &proteus.MILPOptions{
		TimeLimit: time.Duration(cfg.SolverBudgetMS) * time.Millisecond,
		RelGap:    0.005,
	})
	if err != nil {
		fatal(err)
	}
	batch, err := proteus.NewBatching(cfg.Batching)
	if err != nil {
		fatal(err)
	}
	// The system's family set follows the trace's columns (a CSV trace may
	// cover a subset of the zoo).
	var fams []proteus.Family
	for _, name := range tr.Families {
		found := false
		for _, f := range proteus.Zoo() {
			if f.Name == name {
				fams = append(fams, f)
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("trace family %q is not in the model zoo", name))
		}
	}
	sys, err := proteus.NewSystem(proteus.SystemConfig{
		Cluster:       proteus.ScaledTestbed(cfg.ClusterSize),
		Families:      fams,
		SLOMultiplier: cfg.SLOMultiplier,
		Allocator:     alloc,
		Batching:      batch,
		Seed:          cfg.Seed,
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := sys.Run(tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("allocation=%s batching=%s cluster=%d trace=%s (%ds, peak %.0f QPS)\n",
		cfg.ModelAllocation, cfg.Batching, cfg.ClusterSize, cfg.Trace.Kind, tr.Seconds(), tr.PeakQPS())
	fmt.Printf("simulated in %v (wall)\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(res.Summary)
	fmt.Printf("re-allocations=%d model-loads=%d\n", len(res.Plans), res.ModelLoads)
	for q, s := range res.PerFamily {
		fmt.Printf("  %-14s tput=%.1fqps acc=%.2f%% violations=%.4f\n",
			tr.Families[q], s.AvgThroughput, s.EffectiveAccuracy, s.ViolationRatio)
	}

	if *seriesOut != "" {
		f, err := os.Create(*seriesOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := proteus.RenderSeriesCSV(f, cfg.ModelAllocation, res.Collector.Series(-1)); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *seriesOut)
	}
}

func applyDefaults(cfg *config) {
	if cfg.ModelAllocation == "" {
		cfg.ModelAllocation = "ilp"
	}
	if cfg.Batching == "" {
		cfg.Batching = "accscale"
	}
	if cfg.ClusterSize <= 0 {
		cfg.ClusterSize = 20
	}
	if cfg.SLOMultiplier <= 0 {
		cfg.SLOMultiplier = 2
	}
	if cfg.SolverBudgetMS <= 0 {
		cfg.SolverBudgetMS = 500
	}
	if cfg.Trace.Kind == "" {
		cfg.Trace.Kind = "twitter"
	}
}

func buildTrace(tc traceConfig) (*proteus.Trace, error) {
	switch tc.Kind {
	case "twitter":
		return proteus.NewTwitterTrace(proteus.TwitterTraceConfig{
			Seconds: tc.Seconds, BaseQPS: tc.BaseQPS, PeakQPS: tc.PeakQPS, Seed: tc.Seed,
		}), nil
	case "bursty":
		return proteus.NewBurstyTrace(proteus.BurstyTraceConfig{
			Seconds: tc.Seconds, LowQPS: tc.BaseQPS, HighQPS: tc.PeakQPS,
		}), nil
	case "csv":
		f, err := os.Open(tc.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadCSV(f)
	}
	return nil, fmt.Errorf("proteus-sim: unknown trace kind %q", tc.Kind)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "proteus-sim: %v\n", err)
	os.Exit(1)
}
