package main

import (
	"os"
	"path/filepath"
	"testing"

	"proteus"
)

func TestApplyDefaults(t *testing.T) {
	var cfg config
	applyDefaults(&cfg)
	if cfg.ModelAllocation != "ilp" || cfg.Batching != "accscale" ||
		cfg.ClusterSize != 20 || cfg.SLOMultiplier != 2 || cfg.Trace.Kind != "twitter" {
		t.Fatalf("defaults: %+v", cfg)
	}
	cfg2 := config{ModelAllocation: "sommelier", ClusterSize: 8}
	applyDefaults(&cfg2)
	if cfg2.ModelAllocation != "sommelier" || cfg2.ClusterSize != 8 {
		t.Fatalf("overrides clobbered: %+v", cfg2)
	}
}

func TestBuildTraceKinds(t *testing.T) {
	tw, err := buildTrace(traceConfig{Kind: "twitter", Seconds: 30})
	if err != nil || tw.Seconds() != 30 {
		t.Fatalf("twitter: %v %d", err, tw.Seconds())
	}
	bt, err := buildTrace(traceConfig{Kind: "bursty", Seconds: 40})
	if err != nil || bt.Seconds() != 40 {
		t.Fatalf("bursty: %v", err)
	}
	if _, err := buildTrace(traceConfig{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildTraceCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	src := proteus.NewTwitterTrace(proteus.TwitterTraceConfig{Seconds: 10})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := buildTrace(traceConfig{Kind: "csv", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if got.Seconds() != 10 || len(got.Families) != 9 {
		t.Fatalf("csv trace: %d s, %d families", got.Seconds(), len(got.Families))
	}
	if _, err := buildTrace(traceConfig{Kind: "csv", Path: filepath.Join(dir, "missing.csv")}); err == nil {
		t.Fatal("missing file accepted")
	}
}
