// Quickstart: build a heterogeneous cluster, register two model families,
// and serve a small diurnal workload with Proteus (MILP allocation +
// adaptive batching). Prints the §6.1.4 metrics and the re-allocation
// history.
package main

import (
	"fmt"
	"log"
	"time"

	"proteus"
)

func main() {
	// The Proteus resource manager: exact MILP with a 500ms solve budget.
	alloc, err := proteus.NewAllocator("ilp", &proteus.MILPOptions{
		TimeLimit: 500 * time.Millisecond,
		RelGap:    0.005,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register two applications: image classification with EfficientNet
	// variants and with MobileNet variants.
	var families []proteus.Family
	for _, f := range proteus.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			families = append(families, f)
		}
	}

	sys, err := proteus.NewSystem(proteus.SystemConfig{
		Cluster:   proteus.ScaledTestbed(8), // 4 CPUs, 2 GTX 1080 Tis, 2 V100s
		Families:  families,
		Allocator: alloc,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 2-minute demand curve that triples through the run.
	tr := proteus.NewTwitterTrace(proteus.TwitterTraceConfig{
		Seconds:  120,
		BaseQPS:  80,
		PeakQPS:  260,
		Families: proteus.FamilyNames(families),
		Seed:     7,
	})

	res, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== run summary ==")
	fmt.Println(res.Summary)
	fmt.Printf("effective accuracy %.2f%%, max drop %.2f%%, SLO violation ratio %.4f\n",
		res.Summary.EffectiveAccuracy, res.Summary.MaxAccuracyDrop, res.Summary.ViolationRatio)

	fmt.Println("\n== accuracy scaling in action ==")
	for _, p := range res.Plans {
		fmt.Printf("t=%-5v trigger=%-8s predicted-accuracy=%.1f%% hosted=%v\n",
			p.At.Round(time.Second), p.Trigger, p.PredictedAccuracy, p.HostedVariants)
	}
}
