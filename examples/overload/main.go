// Overload: the fast-path guard between control periods. An adversarial
// trace fires demand spikes right after each plan is applied — when the
// solver cannot help for another control period — and the guard sheds
// queries that provably cannot meet their deadline, backpressures flooded
// devices, and degrades routing onto cheaper already-loaded variants while
// the SLO burn monitor stays lit.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"proteus"
)

func main() {
	tr := proteus.NewAdversarialTrace(proteus.AdversarialTraceConfig{
		Seconds:       120,
		BaseQPS:       150,
		SpikeQPS:      420,
		SpikeSeconds:  10,
		PeriodSeconds: 30, // matches the simulator's control period
	})

	alloc, err := proteus.NewAllocator("ilp", &proteus.MILPOptions{
		TimeLimit: 400 * time.Millisecond, RelGap: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Tight burn windows so the monitor reacts inside a 10s spike.
	recorder := proteus.NewTSDBRecorder(proteus.TSDBConfig{SLO: proteus.SLOConfig{
		Target: 0.01, BurnRate: 2,
		ShortWindow: 2 * time.Second, LongWindow: 8 * time.Second,
	}})
	registry := proteus.NewTelemetryRegistry()
	sys, err := proteus.NewSystem(proteus.SystemConfig{
		Cluster:   proteus.ScaledTestbed(20),
		Families:  proteus.Zoo(),
		Allocator: alloc,
		Seed:      7,
		Telemetry: registry,
		TSDB:      recorder,
		Overload:  &proteus.OverloadConfig{Enabled: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== adversarial spikes with the overload guard on ==")
	fmt.Println(res.Summary)
	fmt.Println("guard counters:")
	if err := registry.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("emergency episodes in the decision audit:")
	for _, p := range res.Plans {
		for _, ov := range p.Overloads {
			fmt.Printf("  t=%-6v family=%d %-8s level=%d (%s)\n",
				ov.At.Round(time.Second), ov.Family, ov.Kind, ov.Level, ov.Reason)
		}
	}

	// The experiment harness runs the full three-way comparison.
	reports, err := proteus.OverloadRobustness(proteus.ExperimentOptions{
		ClusterSize:  20,
		TraceSeconds: 120,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== experiment harness report ==")
	if err := proteus.RenderOverload(os.Stdout, reports); err != nil {
		log.Fatal(err)
	}
}
