// Livecluster: the wall-clock serving mode end to end — start the live
// cluster (goroutine workers, background MILP controller), expose the HTTP
// API on an ephemeral port, and fire real HTTP inference requests at it.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"proteus"
	"proteus/internal/numeric"
)

func main() {
	var fams []proteus.Family
	for _, f := range proteus.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" || f.Name == "resnet" {
			fams = append(fams, f)
		}
	}
	alloc, err := proteus.NewAllocator("ilp", &proteus.MILPOptions{
		TimeLimit: 300 * time.Millisecond, RelGap: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := proteus.NewLiveServer(proteus.LiveConfig{
		Cluster:       proteus.ScaledTestbed(8),
		Families:      fams,
		Allocator:     alloc,
		ControlPeriod: 3 * time.Second,
		InitialDemand: []float64{60, 40, 40},
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("live cluster listening at %s\n", base)

	// Fire 300 HTTP queries over ~3 seconds, Poisson arrivals, Zipf mix.
	rng := numeric.NewRNG(9)
	zipf := numeric.NewZipf(len(fams), 1.001)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes = map[string]int{}
	)
	for i := 0; i < 300; i++ {
		time.Sleep(time.Duration(rng.Exp(100) * float64(time.Second)))
		fam := fams[zipf.Sample(rng)].Name
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/query?family="+fam, "application/json", nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var r struct {
				Outcome string  `json:"outcome"`
				Variant string  `json:"variant"`
				Latency float64 `json:"latency_ms"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				return
			}
			mu.Lock()
			outcomes[r.Outcome]++
			mu.Unlock()
		}()
	}
	wg.Wait()

	fmt.Println("outcomes:", outcomes)

	// Read the server-side stats and allocation through the API.
	stats, _ := http.Get(base + "/v1/stats")
	var summary proteus.Summary
	json.NewDecoder(stats.Body).Decode(&summary)
	stats.Body.Close()
	fmt.Printf("server stats: served=%d late=%d dropped=%d acc=%.2f%%\n",
		summary.Served, summary.Late, summary.Dropped, summary.EffectiveAccuracy)

	allocResp, _ := http.Get(base + "/v1/allocation")
	var hosted map[string]string
	json.NewDecoder(allocResp.Body).Decode(&hosted)
	allocResp.Body.Close()
	fmt.Println("hosted models:")
	for dev, v := range hosted {
		if v != "" {
			fmt.Printf("  %-14s %s\n", dev, v)
		}
	}
}
