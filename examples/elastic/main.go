// Elastic: the §7 "hardware scaling in tandem" extension — a sustained
// overload on a small fixed cluster, served once with pure accuracy scaling
// and once with elastic provisioning (servers arrive after a start-up
// delay, accuracy scaling carries the burst meanwhile).
package main

import (
	"fmt"
	"log"
	"time"

	"proteus"
)

func main() {
	var fams []proteus.Family
	for _, f := range proteus.Zoo() {
		if f.Name == "efficientnet" || f.Name == "resnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	// Demand steps up to ~3x the 4-device cluster's comfortable capacity
	// and stays there.
	tr := proteus.NewBurstyTrace(proteus.BurstyTraceConfig{
		Seconds:       300,
		LowQPS:        120,
		HighQPS:       900,
		PeriodSeconds: 150, // one low phase, then a long sustained high phase
		Families:      proteus.FamilyNames(fams),
	})

	run := func(elastic *proteus.ElasticConfig) *proteus.Result {
		alloc, err := proteus.NewAllocator("ilp", &proteus.MILPOptions{
			TimeLimit: 400 * time.Millisecond, RelGap: 0.01,
		})
		if err != nil {
			log.Fatal(err)
		}
		sys, err := proteus.NewSystem(proteus.SystemConfig{
			Cluster:   proteus.ScaledTestbed(4),
			Families:  fams,
			Allocator: alloc,
			Elastic:   elastic,
			Seed:      21,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fixed := run(nil)
	elastic := run(&proteus.ElasticConfig{
		MaxExtra:       3,
		Type:           proteus.V100,
		ProvisionDelay: 60 * time.Second,
	})

	fmt.Println("== fixed cluster (pure accuracy scaling) ==")
	fmt.Println(fixed.Summary)
	fmt.Println("\n== elastic cluster (accuracy scaling while servers start) ==")
	fmt.Println(elastic.Summary)
	fmt.Printf("servers provisioned: %d (each after a %v start-up delay)\n",
		elastic.ExtraDevices, 60*time.Second)
	fmt.Printf("\nthroughput %+0.f QPS, violations %.4f -> %.4f: accuracy scaling\n",
		elastic.Summary.AvgThroughput-fixed.Summary.AvgThroughput,
		fixed.Summary.ViolationRatio, elastic.Summary.ViolationRatio)
	fmt.Println("absorbs the burst during provisioning, then the new hardware takes over (§7).")
}
