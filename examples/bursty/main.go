// Bursty: the §6.3 scenario — a workload alternating between flat low and
// flat high demand — served by Proteus and by the INFaaS-Accuracy and
// Clipper-HA baselines. Shows how accuracy scaling absorbs macro-bursts
// that a static high-accuracy allocation cannot.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"proteus"
)

func main() {
	tr := proteus.NewBurstyTrace(proteus.BurstyTraceConfig{
		Seconds:       240,
		LowQPS:        120,
		HighQPS:       420,
		PeriodSeconds: 60,
	})
	fmt.Printf("trace: %ds alternating %0.f/%0.f QPS\n\n", tr.Seconds(), 120.0, 420.0)

	var results []proteus.SystemResult
	for _, name := range []string{"clipper-ha", "infaas_v2", "ilp"} {
		alloc, err := proteus.NewAllocator(name, &proteus.MILPOptions{
			TimeLimit: 500 * time.Millisecond, RelGap: 0.005,
		})
		if err != nil {
			log.Fatal(err)
		}
		sys, err := proteus.NewSystem(proteus.SystemConfig{
			Cluster:   proteus.ScaledTestbed(20),
			Families:  proteus.Zoo(),
			Allocator: alloc,
			Seed:      11,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, proteus.SystemResult{
			Name:       name,
			Summary:    res.Summary,
			Series:     res.Collector.Series(-1),
			ModelLoads: res.ModelLoads,
			Plans:      len(res.Plans),
		})
		// Per-burst responsiveness: when did re-allocations fire?
		fmt.Printf("%s re-allocations:", name)
		for _, p := range res.Plans {
			fmt.Printf(" %v(%s)", p.At.Round(time.Second), p.Trigger)
		}
		fmt.Println()
	}

	fmt.Println()
	if err := proteus.RenderSystems(os.Stdout, results); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nProteus responds to each burst with a burst-triggered re-allocation,")
	fmt.Println("trading accuracy for throughput during the high phases (§6.3).")
}
