// Report: run the §6.3 bursty workload with the windowed observability
// stack enabled — device time-series sampling and the multi-window SLO
// burn-rate monitor — then write the run dump (run.json) and render the
// self-contained HTML report (report.html: demand vs served, effective
// accuracy, violation ratio with burn bands, latency percentiles, and the
// per-device utilization heatmap). Both outputs are byte-identical across
// runs with the same seed.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"proteus"
)

func main() {
	tr := proteus.NewBurstyTrace(proteus.BurstyTraceConfig{
		Seconds:       240,
		LowQPS:        120,
		HighQPS:       420,
		PeriodSeconds: 60,
	})
	alloc, err := proteus.NewAllocator("ilp", &proteus.MILPOptions{
		TimeLimit: 500 * time.Millisecond, RelGap: 0.005,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The recorder samples every device once a second and watches each
	// family's violation ratio over 5s/60s sliding windows: when both burn
	// the 1% SLO budget at >= 2x, it logs a burn-episode start into the
	// trace and the controller's decision audit.
	recorder := proteus.NewTSDBRecorder(proteus.TSDBConfig{
		SampleInterval: time.Second,
		SLO: proteus.SLOConfig{
			Target:      0.01,
			BurnRate:    2,
			ShortWindow: 5 * time.Second,
			LongWindow:  60 * time.Second,
		},
	})

	cl := proteus.ScaledTestbed(20)
	sys, err := proteus.NewSystem(proteus.SystemConfig{
		Cluster:   cl,
		Families:  proteus.Zoo(),
		Allocator: alloc,
		Seed:      11,
		TSDB:      recorder,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary)

	var devices []string
	for _, d := range cl.Devices() {
		devices = append(devices, d.Name)
	}
	dump := proteus.BuildRunDump(proteus.RunDumpInput{
		Label:       "bursty ilp/accscale",
		Seed:        11,
		Collector:   res.Collector,
		Recorder:    recorder,
		Plans:       res.Plans,
		DeviceNames: devices,
	})
	if err := dump.WriteFile("run.json"); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("report.html", proteus.RenderRunReport(dump), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote run.json (%d windows, %d samples, %d burn transitions)\n",
		len(dump.Windows), len(dump.Samples), len(dump.Burns))
	fmt.Println("wrote report.html — open it in any browser (no scripts, no external assets)")
	fmt.Println("\nThe same report renders from the saved dump:")
	fmt.Println("  go run ./cmd/proteus-report -dump run.json -o report.html")
}
