// Faults: graceful degradation under device failures. A quarter of the
// cluster dies mid-trace and later recovers; the control plane re-allocates
// onto the healthy subset, accuracy scaling absorbs the lost capacity, and
// queries stranded on dead devices are retried instead of silently lost.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"proteus"
)

func main() {
	var fams []proteus.Family
	for _, f := range proteus.Zoo() {
		if f.Name == "efficientnet" || f.Name == "resnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	tr := proteus.NewTwitterTrace(proteus.TwitterTraceConfig{
		Seconds:  240,
		BaseQPS:  200,
		PeakQPS:  420,
		Families: proteus.FamilyNames(fams),
	})

	cl := proteus.ScaledTestbed(8)
	// Kill 25% of the fleet at t=80s; the victims rejoin at t=160s.
	faults := proteus.KillFraction(cl, 0.25, 80*time.Second, 160*time.Second)

	alloc, err := proteus.NewAllocator("ilp", &proteus.MILPOptions{
		TimeLimit: 400 * time.Millisecond, RelGap: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := proteus.NewSystem(proteus.SystemConfig{
		Cluster:   cl,
		Families:  fams,
		Allocator: alloc,
		Faults:    faults,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== 8-device cluster, 2 devices down from 80s to 160s ==")
	fmt.Println(res.Summary)
	for _, p := range res.Plans {
		if p.Trigger == "failure" || p.Trigger == "recovery" {
			fmt.Printf("  t=%-6v %-8s plan by %s\n", p.At, p.Trigger, p.Solver)
		}
	}

	// The experiment harness wraps the same scenario with phase-split
	// accuracy reporting.
	rep, err := proteus.FaultTolerance(proteus.ExperimentOptions{
		ClusterSize:  8,
		TraceSeconds: 240,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== experiment harness report ==")
	if err := proteus.RenderFaults(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
}
