// Batching: the §6.4 scenario in isolation — the same offered load with
// uniform, Poisson, and heavy-tailed Gamma inter-arrivals, served under
// Proteus's adaptive batching and under the Clipper (AIMD) and Nexus
// baselines. Resource allocation is identical in every cell, so the SLO
// violation differences come from batching alone.
package main

import (
	"fmt"
	"log"
	"os"

	"proteus"
)

func main() {
	points, err := proteus.Fig6(proteus.ExperimentOptions{
		ClusterSize:  20,
		TraceSeconds: 120,
		BaseQPS:      150,
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := proteus.RenderFig6(os.Stdout, points); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("On uniform arrivals every policy does fine: the right batch size is")
	fmt.Println("constant. Under Poisson and especially Gamma(0.05) arrivals, Proteus's")
	fmt.Println("proactive, non-work-conserving batching accumulates bursts into full")
	fmt.Println("batches and never lets the queue head expire, while Nexus's rate-planned")
	fmt.Println("fixed batches lag the fluctuations and Clipper's AIMD reacts only after")
	fmt.Println("timeouts have already happened (§6.4).")
}
