// Multiapp: the full multi-tenant setting of the paper — all nine model
// families of Table 3 sharing one 20-device cluster, demand split by a
// Zipf(1.001) distribution with per-family diurnal phases. Prints the
// per-family breakdown of §6.7: who got which accuracy, who was shed.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"proteus"
)

func main() {
	r, families, err := proteus.Fig9(proteus.ExperimentOptions{
		ClusterSize:  20,
		TraceSeconds: 240,
		BaseQPS:      180,
		PeakQPS:      520,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== per-family outcome under Proteus (Fig. 9) ==")
	if err := proteus.RenderFig9(os.Stdout, r, families); err != nil {
		log.Fatal(err)
	}

	// Which variants served each family over the run? Reconstruct from the
	// family SLOs and zoo for context.
	fmt.Println("\n== family SLOs (2x the fastest CPU variant, §6.1.2) ==")
	zoo := proteus.Zoo()
	sort.Slice(zoo, func(i, j int) bool { return zoo[i].Name < zoo[j].Name })
	for _, f := range zoo {
		fmt.Printf("  %-14s %d variants, SLO %v\n",
			f.Name, len(f.Variants), proteus.FamilySLO(f, 2).Round(time.Millisecond))
	}

	fmt.Println("\nThe Zipf head (resnet) dominates throughput; low-rate families carry")
	fmt.Println("less weight in the system-level accuracy objective and so see more")
	fmt.Println("variation — the fairness trade-off the paper discusses in §7.")
}
