// Top-level benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§6), plus the §6.8 overhead microbenchmarks. Each
// end-to-end benchmark runs the corresponding experiment from
// internal/experiments at a bench-friendly scale and reports the headline
// quantities as custom metrics (violation ratios, accuracies, solve times),
// so `go test -bench=.` regenerates the paper's result shapes.
// EXPERIMENTS.md records paper-vs-measured values from the full-scale runs
// of cmd/proteus-bench.
package proteus_test

import (
	"testing"
	"time"

	"proteus"
	"proteus/internal/allocator"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/lp"
	"proteus/internal/milp"
	"proteus/internal/models"
	"proteus/internal/numeric"
	"proteus/internal/profiles"
	"proteus/internal/router"
	"proteus/internal/simulation"
	"proteus/internal/trace"
)

// benchOptions is the shared bench-scale experiment configuration.
func benchOptions() proteus.ExperimentOptions {
	return proteus.ExperimentOptions{
		ClusterSize:  20,
		TraceSeconds: 150,
		BaseQPS:      180,
		PeakQPS:      480,
		Seed:         20240427,
		SolverBudget: 400 * time.Millisecond,
	}
}

func findResult(b *testing.B, results []proteus.SystemResult, name string) proteus.SystemResult {
	b.Helper()
	for _, r := range results {
		if r.Name == name {
			return r
		}
	}
	b.Fatalf("system %s missing", name)
	return proteus.SystemResult{}
}

// BenchmarkFig1aAccuracyThroughput regenerates the Figure 1a trade-off
// points (EfficientNet variants on three device types at batch one).
func BenchmarkFig1aAccuracyThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := proteus.Fig1a()
		if len(rows) != 24 {
			b.Fatalf("%d rows", len(rows))
		}
		for _, r := range rows {
			if r.Device == proteus.V100 && r.Variant == "b0" {
				b.ReportMetric(r.QPS, "v100-b0-qps")
			}
		}
	}
}

// BenchmarkFig1bParetoFrontier enumerates all 3125 placements of Figure 1b
// and extracts the Pareto frontier.
func BenchmarkFig1bParetoFrontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := proteus.Fig1b()
		frontier := proteus.ParetoFrontier(points)
		if len(points) != 3125 || len(frontier) == 0 {
			b.Fatalf("points %d frontier %d", len(points), len(frontier))
		}
		b.ReportMetric(float64(len(frontier)), "frontier-points")
	}
}

// BenchmarkTable2FeatureMatrix regenerates the feature-comparison matrix.
func BenchmarkTable2FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := proteus.Table2(benchOptions())
		if err != nil || len(rows) != 4 {
			b.Fatalf("table2: %v (%d rows)", err, len(rows))
		}
	}
}

// BenchmarkFig4EndToEnd runs the five-system end-to-end comparison on the
// Twitter-like trace and reports each system's violation ratio.
func BenchmarkFig4EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := proteus.Fig4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		pro := findResult(b, results, "ilp")
		ha := findResult(b, results, "clipper-ha")
		b.ReportMetric(pro.Summary.ViolationRatio, "proteus-violations")
		b.ReportMetric(ha.Summary.ViolationRatio, "clipper-ha-violations")
		b.ReportMetric(pro.Summary.EffectiveAccuracy, "proteus-accuracy%")
		b.ReportMetric(pro.Summary.MaxAccuracyDrop, "proteus-maxdrop%")
		b.ReportMetric(pro.Summary.AvgThroughput, "proteus-qps")
	}
}

// BenchmarkFig5BurstyWorkload runs the macro-burst responsiveness
// comparison (§6.3).
func BenchmarkFig5BurstyWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := proteus.Fig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		pro := findResult(b, results, "ilp")
		inf := findResult(b, results, "infaas_v2")
		b.ReportMetric(pro.Summary.ViolationRatio, "proteus-violations")
		b.ReportMetric(inf.Summary.ViolationRatio, "infaas-violations")
		b.ReportMetric(float64(pro.Plans), "proteus-replans")
	}
}

// BenchmarkFig6AdaptiveBatching runs the batching isolation grid (§6.4) and
// reports the Gamma-trace violation ratio per policy.
func BenchmarkFig6AdaptiveBatching(b *testing.B) {
	o := benchOptions()
	o.TraceSeconds = 90
	for i := 0; i < b.N; i++ {
		points, err := proteus.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Process == trace.GammaProcess {
				b.ReportMetric(p.ViolationRatio, "gamma-"+p.Batching+"-violations")
			}
		}
	}
}

// BenchmarkFig7Ablation runs the §6.5 ablation study.
func BenchmarkFig7Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := proteus.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		full := findResult(b, results, "ilp")
		noMS := findResult(b, results, "proteus-wo-ms")
		noAB := findResult(b, results, "ilp+static")
		b.ReportMetric(full.Summary.ViolationRatio, "full-violations")
		b.ReportMetric(noMS.Summary.ViolationRatio, "wo-ms-violations")
		b.ReportMetric(noAB.Summary.ViolationRatio, "wo-ab-violations")
	}
}

// BenchmarkFig8SLOSensitivity sweeps the latency SLO multiplier 1x-3.5x
// (§6.6). The sweep is 30 end-to-end runs; the bench scale keeps each short.
func BenchmarkFig8SLOSensitivity(b *testing.B) {
	o := benchOptions()
	o.TraceSeconds = 90
	for i := 0; i < b.N; i++ {
		points, err := proteus.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.System != "ilp" {
				continue
			}
			if p.SLOMultiplier == 1 {
				b.ReportMetric(p.ViolationRatio, "proteus-1x-violations")
			}
			if p.SLOMultiplier == 3.5 {
				b.ReportMetric(p.ViolationRatio, "proteus-3.5x-violations")
			}
		}
	}
}

// BenchmarkFig9FamilyBreakdown runs the §6.7 per-family breakdown.
func BenchmarkFig9FamilyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, families, err := proteus.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.PerFamily) != len(families) {
			b.Fatal("family breakdown incomplete")
		}
		b.ReportMetric(r.PerFamily[0].AvgThroughput, "resnet-qps")
		b.ReportMetric(r.PerFamily[len(families)-1].AvgThroughput, "gpt2-qps")
	}
}

// BenchmarkFig10MILPScalability runs the §6.8 per-device MILP solve-time
// sweep (small bench-scale points; cmd/proteus-bench runs the full sweep).
func BenchmarkFig10MILPScalability(b *testing.B) {
	o := proteus.Fig10Options{
		Devices:   []int{4, 8, 16},
		Variants:  []int{9, 17},
		Types:     []int{1, 3},
		TimeLimit: 2 * time.Second,
	}
	for i := 0; i < b.N; i++ {
		points, err := proteus.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Dimension == "devices" && p.Value == 16 {
				b.ReportMetric(p.SolveTime.Seconds(), "solve-16-devices-sec")
			}
		}
	}
}

// BenchmarkSimVsLive runs the same constant workload through the
// discrete-event simulator and the wall-clock live cluster, reporting both
// effective accuracies — the paper's §6.2 simulator-fidelity check (they
// report 0.12% accuracy / 0.82% throughput deltas).
func BenchmarkSimVsLive(b *testing.B) {
	var fams []models.Family
	for _, f := range models.Zoo() {
		if f.Name == "efficientnet" || f.Name == "mobilenet" {
			fams = append(fams, f)
		}
	}
	names := models.FamilyNames(fams)
	const totalQPS = 120.0
	for i := 0; i < b.N; i++ {
		// Simulator leg.
		simAlloc, _ := proteus.NewAllocator("ilp", &proteus.MILPOptions{TimeLimit: 300 * time.Millisecond, RelGap: 0.01})
		sys, err := proteus.NewSystem(proteus.SystemConfig{
			Cluster:         cluster.ScaledTestbed(8),
			Families:        fams,
			Allocator:       simAlloc,
			MetricsInterval: time.Second, // align bins with the live collector
			Seed:            9,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr := trace.NewFlat(names, []float64{totalQPS / 2, totalQPS / 2}, 10)
		simRes, err := sys.Run(tr)
		if err != nil {
			b.Fatal(err)
		}

		// Live leg: same rate for the same (wall-clock) duration.
		liveAlloc, _ := proteus.NewAllocator("ilp", &proteus.MILPOptions{TimeLimit: 300 * time.Millisecond, RelGap: 0.01})
		srv, err := proteus.NewLiveServer(proteus.LiveConfig{
			Cluster:       cluster.ScaledTestbed(8),
			Families:      fams,
			Allocator:     liveAlloc,
			ControlPeriod: 5 * time.Second,
			InitialDemand: []float64{totalQPS / 2, totalQPS / 2},
			Seed:          9,
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := numeric.NewRNG(13)
		done := make(chan struct{})
		sem := make(chan struct{}, 256)
		start := time.Now()
		go func() {
			defer close(done)
			// Absolute-time scheduling: sleep overshoot must not thin the
			// offered rate, or the sim/live comparison compares different
			// workloads.
			next := 0.0
			for {
				next += rng.Exp(totalQPS)
				target := start.Add(time.Duration(next * float64(time.Second)))
				if next >= 10 {
					return
				}
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
				fam := names[rng.Intn(2)]
				sem <- struct{}{}
				go func() {
					defer func() { <-sem }()
					srv.Infer(fam)
				}()
			}
		}()
		<-done
		time.Sleep(300 * time.Millisecond) // drain in-flight batches
		liveSum := srv.Summary()
		srv.Close()

		b.ReportMetric(simRes.Summary.EffectiveAccuracy, "sim-accuracy%")
		b.ReportMetric(liveSum.EffectiveAccuracy, "live-accuracy%")
		b.ReportMetric(simRes.Summary.AvgThroughput, "sim-qps")
		b.ReportMetric(liveSum.AvgThroughput, "live-qps")
	}
}

// ---------------------------------------------------------------------------
// §6.8 overhead microbenchmarks

// BenchmarkRouterLookup measures the request router's per-query routing
// decision; the paper reports < 1 ms (§6.8) — this path is nanoseconds.
func BenchmarkRouterLookup(b *testing.B) {
	fams := models.Zoo()
	slos := make([]time.Duration, len(fams))
	demand := make([]float64, len(fams))
	for q, f := range fams {
		slos[q] = profiles.FamilySLO(f, 2)
		demand[q] = 40
	}
	in := &allocator.Input{Cluster: cluster.ScaledTestbed(20), Families: fams, SLOs: slos, Demand: demand}
	plan, err := allocator.NewMILP(&allocator.MILPOptions{TimeLimit: time.Second, RelGap: 0.01}).Allocate(in)
	if err != nil {
		b.Fatal(err)
	}
	table := router.BuildTable(plan, len(fams))
	rng := numeric.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Pick(i%len(fams), rng)
	}
}

// BenchmarkMILPSolve measures one full Proteus resource-manager solve at
// the default experiment scale (the paper reports 4.2 s with Gurobi on 40
// devices; see DESIGN.md for the substitution discussion).
func BenchmarkMILPSolve(b *testing.B) {
	fams := models.Zoo()
	slos := make([]time.Duration, len(fams))
	demand := make([]float64, len(fams))
	z := numeric.NewZipf(len(fams), 1.001)
	for q, f := range fams {
		slos[q] = profiles.FamilySLO(f, 2)
		demand[q] = 400 * z.P(q)
	}
	for i := 0; i < b.N; i++ {
		a := allocator.NewMILP(&allocator.MILPOptions{TimeLimit: 2 * time.Second, RelGap: 0.005})
		in := &allocator.Input{Cluster: cluster.ScaledTestbed(20), Families: fams, SLOs: slos, Demand: demand}
		alloc, err := a.Allocate(in)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(alloc.PredictedAccuracy, "predicted-accuracy%")
	}
}

// BenchmarkLPSolve measures one simplex solve of a mid-size LP.
func BenchmarkLPSolve(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem()
		const n = 60
		vars := make([]int, n)
		for i := range vars {
			vars[i] = p.AddVariable("x", 0, float64(1+i%7))
			p.SetObjective(vars[i], float64((i*13)%17))
		}
		for r := 0; r < 40; r++ {
			var terms []lp.Term
			for j := 0; j < n; j += 2 {
				terms = append(terms, lp.Term{Var: vars[j], Coef: float64((r+j)%5) + 1})
			}
			p.AddConstraint(terms, lp.LE, float64(50+r*3))
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.Solve(build(), nil)
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("solve: %v %v", err, sol.Status)
		}
	}
}

// BenchmarkBranchAndBound measures a small knapsack MILP solve.
func BenchmarkBranchAndBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := milp.NewProblem()
		var terms []lp.Term
		for j := 0; j < 24; j++ {
			v := p.AddBinary("x")
			p.SetObjective(v, float64(10+(j*7)%13))
			terms = append(terms, lp.Term{Var: v, Coef: float64(3 + (j*11)%9)})
		}
		p.AddConstraint(terms, lp.LE, 60)
		sol := milp.Solve(p, nil)
		if sol.Status != milp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkAdaptiveBatchingDecide measures the per-decision cost of the §5
// algorithm (it sits on every worker's critical path).
func BenchmarkAdaptiveBatchingDecide(b *testing.B) {
	policy := batching.NewAccScale()
	queue := make([]batching.Query, 48)
	for i := range queue {
		queue[i] = batching.Query{ID: uint64(i), Deadline: time.Duration(200+i) * time.Millisecond}
	}
	ctx := &batching.Context{
		Now:      0,
		Queue:    queue,
		MaxBatch: 32,
		MemBatch: 512,
		ProcTime: func(n int) time.Duration { return time.Duration(16+2*n) * time.Millisecond },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.Decide(ctx)
	}
}

// BenchmarkSimulationEngine measures raw event throughput of the
// discrete-event core (events scheduled out of order, fired in order).
func BenchmarkSimulationEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simulation.NewEngine()
		count := 0
		const n = 4096
		for j := 0; j < n; j++ {
			e.Schedule(time.Duration((j*7919)%n)*time.Microsecond, func() { count++ })
		}
		e.Run()
		if count != n {
			b.Fatal("events lost")
		}
	}
}

// BenchmarkDesignAblations measures the repository's own design choices
// (DESIGN.md): switch-cost churn control, admission control, and the §7
// fairness extension, each toggled individually.
func BenchmarkDesignAblations(b *testing.B) {
	o := benchOptions()
	o.TraceSeconds = 90
	for i := 0; i < b.N; i++ {
		rows, err := proteus.DesignAblations(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Name == "default" {
				b.ReportMetric(float64(r.ModelLoads), "default-loads")
				b.ReportMetric(r.ViolationRatio, "default-violations")
			}
			if r.Name == "no-admission" {
				b.ReportMetric(r.ViolationRatio, "no-admission-violations")
			}
		}
	}
}

// BenchmarkOverloadRobustness runs the overload experiment (no-guard vs
// shed-only vs degrade+shed on the stale-plan adversarial trace) and reports
// the headline robustness quantities.
func BenchmarkOverloadRobustness(b *testing.B) {
	o := benchOptions()
	o.TraceSeconds = 90
	for i := 0; i < b.N; i++ {
		reports, err := proteus.OverloadRobustness(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range reports {
			if rep.Trace != "adversarial" {
				continue
			}
			for _, run := range rep.Runs {
				switch run.Guard {
				case "no-guard":
					b.ReportMetric(run.Result.Summary.ViolationRatio, "no-guard-violations")
				case "degrade+shed":
					b.ReportMetric(run.Result.Summary.ViolationRatio, "degrade-shed-violations")
					b.ReportMetric(run.Goodput, "degrade-shed-goodput")
				}
			}
		}
	}
}

// BenchmarkFormulationComparison contrasts the exact aggregated MILP with
// the per-device formulation on an identical instance.
func BenchmarkFormulationComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := proteus.CompareFormulations([]int{12}, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AggregatedTime.Seconds(), "aggregated-sec")
		b.ReportMetric(rows[0].PerDeviceTime.Seconds(), "per-device-sec")
	}
}
