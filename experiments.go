package proteus

import (
	"io"
	"time"

	"proteus/internal/experiments"
)

// Experiment result types, re-exported for downstream analysis.
type (
	// Fig1aRow is one EfficientNet (device, variant) point of Figure 1a.
	Fig1aRow = experiments.Fig1aRow
	// ConfigPoint is one placement configuration of Figure 1b.
	ConfigPoint = experiments.ConfigPoint
	// SystemResult is one system's outcome in an end-to-end experiment.
	SystemResult = experiments.SystemResult
	// Fig6Point is one (arrival process, batching policy) cell of Figure 6.
	Fig6Point = experiments.Fig6Point
	// Fig8Point is one (system, SLO multiplier) cell of Figure 8.
	Fig8Point = experiments.Fig8Point
	// Fig10Point is one MILP scalability measurement of Figure 10.
	Fig10Point = experiments.Fig10Point
	// Fig10Options parameterize the scalability sweep.
	Fig10Options = experiments.Fig10Options
	// Table2Row is one capability row of the Table 2 feature matrix.
	Table2Row = experiments.Table2Row
	// DesignAblationRow is one configuration of the implementation-level
	// design ablations (switch cost, admission control, fairness).
	DesignAblationRow = experiments.DesignAblationRow
	// AggregationComparison contrasts the exact aggregated MILP with the
	// paper's literal per-device formulation.
	AggregationComparison = experiments.AggregationComparison
	// FaultReport summarizes the graceful-degradation experiment.
	FaultReport = experiments.FaultReport
	// OverloadReport compares overload-guard configurations on one trace.
	OverloadReport = experiments.OverloadReport
	// OverloadRun is one (trace, guard) cell of the overload experiment.
	OverloadRun = experiments.OverloadRun
)

// Fig1a reproduces Figure 1a (EfficientNet accuracy-throughput trade-off).
func Fig1a() []Fig1aRow { return experiments.Fig1a() }

// Fig1b reproduces Figure 1b (all 3125 placements, Pareto frontier marked).
func Fig1b() []ConfigPoint { return experiments.Fig1b() }

// ParetoFrontier filters Fig1b points to the frontier.
func ParetoFrontier(points []ConfigPoint) []ConfigPoint {
	return experiments.ParetoFrontier(points)
}

// Fig4 reproduces the end-to-end comparison of §6.2.
func Fig4(o ExperimentOptions) ([]SystemResult, error) { return experiments.Fig4(o) }

// Fig5 reproduces the burst-responsiveness experiment of §6.3.
func Fig5(o ExperimentOptions) ([]SystemResult, error) { return experiments.Fig5(o) }

// Fig6 reproduces the adaptive-batching isolation of §6.4.
func Fig6(o ExperimentOptions) ([]Fig6Point, error) { return experiments.Fig6(o) }

// Fig7 reproduces the ablation study of §6.5.
func Fig7(o ExperimentOptions) ([]SystemResult, error) { return experiments.Fig7(o) }

// Fig8 reproduces the SLO sensitivity sweep of §6.6.
func Fig8(o ExperimentOptions) ([]Fig8Point, error) { return experiments.Fig8(o) }

// Fig9 reproduces the per-family breakdown of §6.7.
func Fig9(o ExperimentOptions) (SystemResult, []string, error) { return experiments.Fig9(o) }

// Fig10 reproduces the MILP scalability study of §6.8.
func Fig10(o Fig10Options) ([]Fig10Point, error) { return experiments.Fig10(o) }

// Table2 reproduces the feature-comparison matrix.
func Table2(o ExperimentOptions) ([]Table2Row, error) { return experiments.Table2(o) }

// DesignAblations measures the repository's own design choices (DESIGN.md):
// switch-cost churn control, admission control, and the fairness extension.
func DesignAblations(o ExperimentOptions) ([]DesignAblationRow, error) {
	return experiments.DesignAblations(o)
}

// CompareFormulations contrasts the aggregated and per-device MILP
// formulations on identical instances (same optimum, different solve time).
func CompareFormulations(sizes []int, timeLimit time.Duration) ([]AggregationComparison, error) {
	return experiments.CompareFormulations(sizes, timeLimit)
}

// FaultTolerance runs the graceful-degradation experiment: a quarter of the
// fleet fails for the middle third of the trace and the system degrades
// accuracy instead of availability.
func FaultTolerance(o ExperimentOptions) (FaultReport, error) {
	return experiments.FaultTolerance(o)
}

// OverloadRobustness compares no-guard, shed-only and degrade+shed overload
// configurations on the macro-burst and adversarial stale-plan traces.
func OverloadRobustness(o ExperimentOptions) ([]OverloadReport, error) {
	return experiments.OverloadRobustness(o)
}

// Render helpers writing experiment results as aligned text tables.
var (
	RenderFig1a     = experiments.RenderFig1a
	RenderFig1b     = experiments.RenderFig1b
	RenderSystems   = experiments.RenderSystems
	RenderFig6      = experiments.RenderFig6
	RenderFig8      = experiments.RenderFig8
	RenderFig10     = experiments.RenderFig10
	RenderTable2    = experiments.RenderTable2
	RenderSeriesCSV = experiments.RenderSeriesCSV
	RenderFaults    = experiments.RenderFaults
	RenderOverload  = experiments.RenderOverload
)

// RenderFig9 writes the per-family breakdown table.
func RenderFig9(w io.Writer, r SystemResult, families []string) error {
	return experiments.RenderFig9(w, r, families)
}

// RenderDesignAblations writes the design-ablation table.
var RenderDesignAblations = experiments.RenderDesignAblations

// RenderFormulations writes the MILP formulation comparison.
var RenderFormulations = experiments.RenderFormulations
