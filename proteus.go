// Package proteus is a from-scratch Go implementation of Proteus, the
// high-throughput inference-serving system with accuracy scaling from
// ASPLOS 2024 (Ahmad et al.). It serves inference queries on a fixed-size
// heterogeneous cluster and reacts to demand changes by swapping model
// variants of different accuracy/throughput profiles — accuracy scaling —
// instead of adding hardware.
//
// The package is a facade over the implementation packages:
//
//   - Cluster and model-zoo construction (the paper's testbed and Table 3
//     model families).
//   - Workload synthesis: Twitter-like diurnal traces, macro-burst traces,
//     and micro-burst inter-arrival processes (§6.1.3).
//   - The discrete-event simulator that the paper's evaluation runs on
//     (NewSystem / System.Run), with the Proteus MILP allocator, the
//     INFaaS / Sommelier / Clipper baselines, and all batching policies.
//   - The live cluster mode (NewLiveServer): the same control plane on
//     wall-clock time behind an HTTP API.
//   - The experiment harness regenerating every table and figure of the
//     paper's evaluation (Experiments / Fig* functions).
//
// A minimal simulation:
//
//	alloc, _ := proteus.NewAllocator("ilp", nil)
//	sys, _ := proteus.NewSystem(proteus.SystemConfig{
//		Cluster:   proteus.ScaledTestbed(20),
//		Families:  proteus.Zoo(),
//		Allocator: alloc,
//	})
//	tr := proteus.NewTwitterTrace(proteus.TwitterTraceConfig{Seconds: 300})
//	res, _ := sys.Run(tr)
//	fmt.Println(res.Summary)
package proteus

import (
	"time"

	"proteus/internal/allocator"
	"proteus/internal/attrib"
	"proteus/internal/batching"
	"proteus/internal/cluster"
	"proteus/internal/controlplane"
	"proteus/internal/core"
	"proteus/internal/experiments"
	"proteus/internal/flightrec"
	"proteus/internal/metrics"
	"proteus/internal/models"
	"proteus/internal/overload"
	"proteus/internal/profiles"
	"proteus/internal/report"
	"proteus/internal/serving"
	"proteus/internal/telemetry"
	"proteus/internal/trace"
	"proteus/internal/tsdb"
)

// Core serving types, re-exported from the implementation packages.
type (
	// Cluster is a fixed heterogeneous device fleet.
	Cluster = cluster.Cluster
	// DeviceType identifies a hardware class (CPU, GTX1080Ti, V100).
	DeviceType = cluster.DeviceType
	// Family is a model family (one registered application / query type).
	Family = models.Family
	// Variant is one member of a model family.
	Variant = models.Variant
	// Trace is a per-second demand curve per family.
	Trace = trace.Trace
	// Allocator is a resource-management policy (Proteus MILP or baseline).
	Allocator = allocator.Allocator
	// Allocation is a model selection + placement + query assignment plan.
	Allocation = allocator.Allocation
	// AllocationInput is the problem an Allocator solves.
	AllocationInput = allocator.Input
	// MILPOptions tune the Proteus MILP allocator.
	MILPOptions = allocator.MILPOptions
	// BatchingPolicy is a per-worker batch scheduling algorithm.
	BatchingPolicy = batching.Policy
	// BatchingFactory creates per-worker policy instances.
	BatchingFactory = batching.Factory
	// SystemConfig configures a simulated serving system.
	SystemConfig = core.Config
	// ElasticConfig enables hardware scaling in tandem with accuracy
	// scaling (the paper's §7 extension).
	ElasticConfig = core.ElasticConfig
	// System is a simulated serving system.
	System = core.System
	// Result is a simulation outcome.
	Result = core.Result
	// Summary aggregates the §6.1.4 evaluation metrics.
	Summary = metrics.Summary
	// SeriesPoint is one bin of a metric time series.
	SeriesPoint = metrics.Point
	// LiveConfig configures the wall-clock cluster mode.
	LiveConfig = serving.Config
	// LiveServer is the wall-clock cluster with an HTTP API.
	LiveServer = serving.Server
	// ExperimentOptions scale the paper-reproduction experiments.
	ExperimentOptions = experiments.Options
	// FailureSchedule is a deterministic fault-injection plan usable by both
	// the simulator (SystemConfig.Faults) and the live mode
	// (LiveConfig.Faults).
	FailureSchedule = cluster.FailureSchedule
	// FailureEvent is one device failure (and optional recovery).
	FailureEvent = cluster.FailureEvent
	// RandomScheduleConfig parameterizes seeded MTBF/MTTR fault injection.
	RandomScheduleConfig = cluster.RandomScheduleConfig
	// TypeCount is one (device type, count) entry of an explicit cluster spec.
	TypeCount = cluster.TypeCount
	// Tracer records per-query lifecycle events into a bounded ring buffer
	// (SystemConfig.Tracer / LiveConfig.Tracer).
	Tracer = telemetry.Tracer
	// TraceEvent is one recorded lifecycle event.
	TraceEvent = telemetry.Event
	// TelemetryRegistry is a named counter/gauge registry
	// (SystemConfig.Telemetry / LiveConfig.Telemetry).
	TelemetryRegistry = telemetry.Registry
	// PlanRecord is one control-period entry of the decision audit log.
	PlanRecord = controlplane.PlanRecord
	// TSDBRecorder collects per-device sampled time-series and the SLO
	// burn-rate monitor state (SystemConfig.TSDB / LiveConfig.TSDB). A nil
	// recorder is a valid no-op, like the tracer.
	TSDBRecorder = tsdb.Recorder
	// TSDBConfig parameterizes a TSDBRecorder.
	TSDBConfig = tsdb.Config
	// SLOConfig tunes the multi-window burn-rate monitor.
	SLOConfig = tsdb.SLOConfig
	// BurnEvent is one SLO burn-episode transition.
	BurnEvent = tsdb.BurnEvent
	// DeviceSample is one point of a device's sampled time-series.
	DeviceSample = tsdb.Sample
	// LatencyHistogram is the log-linear bucketed histogram behind every
	// latency percentile in Summary and the windowed series.
	LatencyHistogram = tsdb.Histogram
	// RunDump is the full serializable observability state of one run.
	RunDump = report.Dump
	// RunDumpInput names the sources a RunDump is assembled from.
	RunDumpInput = report.BuildInput
	// BenchBaseline is a parsed proteus-benchjson output.
	BenchBaseline = report.Baseline
	// OverloadConfig enables the fast-path overload guard — deadline
	// admission control, mailbox backpressure, and burn-triggered emergency
	// accuracy degradation (SystemConfig.Overload / LiveConfig.Overload).
	OverloadConfig = overload.Config
	// OverloadState is the guard's introspection snapshot, exposed by the
	// live server's /healthz endpoint.
	OverloadState = overload.State
	// OverloadEpisode is one active emergency-degradation episode.
	OverloadEpisode = overload.Episode
	// FlightRecorder is the black-box flight recorder: bounded rings of
	// recent observability state snapshotted into incident bundles on SLO
	// burn, overload, allocator fallback, device failure, or manual trigger
	// (SystemConfig.Flight / LiveConfig.Flight). A nil recorder is a valid
	// no-op, like the tracer.
	FlightRecorder = flightrec.Recorder
	// FlightConfig sizes the flight recorder's rings and selects live mode.
	FlightConfig = flightrec.Config
	// FlightSources are the observability surfaces the recorder samples.
	FlightSources = flightrec.Sources
	// IncidentBundle is one incident's atomic diagnostic snapshot.
	IncidentBundle = flightrec.Bundle
	// PhaseStat is one row of the per-family / per-device latency phase
	// decomposition (admission, queue, batch_form, exec, response).
	PhaseStat = tsdb.PhaseStat
	// PhaseDurations is one query's per-phase latency split.
	PhaseDurations = tsdb.PhaseDurations
	// AttributionInput configures one latency-attribution pass over a
	// lifecycle trace.
	AttributionInput = attrib.Input
	// AttributionReport is the full attribution output: per-query latency
	// waterfalls with blame labels, plus family/window blame tables.
	AttributionReport = attrib.Report
	// Explanation is one query's attributed latency waterfall.
	Explanation = attrib.Explanation
)

// Device types of the paper's testbed.
const (
	CPU       = cluster.CPU
	GTX1080Ti = cluster.GTX1080Ti
	V100      = cluster.V100
)

// Zoo returns the paper's Table 3 model zoo: nine families, 51 variants.
func Zoo() []Family { return models.Zoo() }

// FamilyNames returns family names in zoo order.
func FamilyNames(zoo []Family) []string { return models.FamilyNames(zoo) }

// PaperTestbed returns the paper's 40-device cluster (20 CPUs,
// 10 GTX 1080 Tis, 10 V100s).
func PaperTestbed() *Cluster { return cluster.PaperTestbed() }

// ScaledTestbed returns a cluster with the paper's 2:1:1 device-type ratio
// scaled to the given size.
func ScaledTestbed(total int) *Cluster { return cluster.ScaledTestbed(total) }

// NewClusterFromSpec builds a cluster from (type, count) pairs, validating
// device types instead of panicking on unknown ones.
func NewClusterFromSpec(counts []TypeCount) (*Cluster, error) {
	return cluster.NewFromSpec(counts)
}

// KillFraction builds a failure schedule that fails the given fraction of
// the cluster at `at`, spread across the device-type groups; recoverAt == 0
// means the victims never come back.
func KillFraction(c *Cluster, frac float64, at, recoverAt time.Duration) *FailureSchedule {
	return cluster.KillFraction(c, frac, at, recoverAt)
}

// RandomFailureSchedule draws a seeded, reproducible fail/recover timeline
// with exponential MTBF/MTTR per device.
func RandomFailureSchedule(c *Cluster, cfg RandomScheduleConfig) (*FailureSchedule, error) {
	return cluster.RandomSchedule(c, cfg)
}

// FamilySLO returns the latency SLO of a family: the batch-1 CPU latency of
// its fastest variant times the multiplier (§6.1.2; the paper uses 2).
func FamilySLO(f Family, multiplier float64) time.Duration {
	return profiles.FamilySLO(f, multiplier)
}

// NewAllocator builds an allocation policy by its artifact config name:
// "ilp" (Proteus), "ilp-fair" (the §7 fairness extension), "infaas_v2",
// "sommelier", "clipper-ht", "clipper-ha", or an ablation
// ("proteus-wo-ms", "proteus-wo-mp", "proteus-wo-qa").
func NewAllocator(name string, opts *MILPOptions) (Allocator, error) {
	return allocator.ByName(name, opts)
}

// NewBatching builds a batching-policy factory by its artifact config name:
// "accscale" (Proteus), "nexus", "aimd", or "static-N".
func NewBatching(name string) (BatchingFactory, error) {
	return batching.ByName(name)
}

// NewTracer returns a lifecycle tracer holding at most capacity events
// (capacity <= 0 selects the default, one million). A nil *Tracer is a
// valid no-op recorder, so tracing stays opt-in and free when unused.
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// NewTelemetryRegistry returns an empty counter/gauge registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewTSDBRecorder returns an empty windowed-observability recorder with
// defaults applied (1s sampling, 1% SLO budget, 2x burn threshold over
// 5s/60s windows).
func NewTSDBRecorder(cfg TSDBConfig) *TSDBRecorder { return tsdb.NewRecorder(cfg) }

// BuildRunDump assembles a run's observability outputs into a RunDump.
func BuildRunDump(in RunDumpInput) *RunDump { return report.Build(in) }

// AnalyzeAttribution runs the deterministic latency-attribution engine over
// a lifecycle trace: per-query component waterfalls that sum exactly to the
// end-to-end latency, with a blame label on every SLO-violated query.
func AnalyzeAttribution(in AttributionInput) *AttributionReport { return attrib.Analyze(in) }

// ReadRunDump parses a RunDump JSON file.
func ReadRunDump(path string) (*RunDump, error) { return report.ReadDumpFile(path) }

// RenderRunReport renders a RunDump as a self-contained HTML report
// (inline SVG, no scripts). Byte-deterministic for a given dump.
func RenderRunReport(d *RunDump) []byte { return report.RenderHTML(d) }

// NewFlightRecorder returns a flight recorder with defaults applied (4096
// trace events, 64 counter snapshots, 2048 samples, 256 burns, 32 plans,
// 16 retained incidents). A nil *FlightRecorder is a valid no-op.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder { return flightrec.New(cfg) }

// ReadIncidentBundle parses an incident bundle JSON file written by the
// flight recorder.
func ReadIncidentBundle(path string) (*IncidentBundle, error) {
	return flightrec.ReadBundleFile(path)
}

// RenderIncidentReport renders an incident bundle as a self-contained HTML
// page. Byte-deterministic for a given bundle.
func RenderIncidentReport(b *IncidentBundle) []byte { return report.RenderIncident(b) }

// NewSystem assembles a simulated serving system.
func NewSystem(cfg SystemConfig) (*System, error) { return core.NewSystem(cfg) }

// NewLiveServer assembles and starts the wall-clock cluster mode.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) { return serving.NewServer(cfg) }

// TwitterTraceConfig parameterizes the Twitter-like synthetic workload
// (§6.1.3): a diurnal curve with spikes and noise, Zipf-split across the
// zoo's nine families.
type TwitterTraceConfig struct {
	// Seconds is the trace length (default 300).
	Seconds int
	// BaseQPS is the demand floor (default 180).
	BaseQPS float64
	// PeakQPS is the diurnal peak (default 560).
	PeakQPS float64
	// Seed drives the synthesis (default 1).
	Seed uint64
	// Families defaults to the full zoo's family names.
	Families []string
}

// NewTwitterTrace synthesizes the Twitter-like workload.
func NewTwitterTrace(cfg TwitterTraceConfig) *Trace {
	if cfg.Seconds <= 0 {
		cfg.Seconds = 300
	}
	if cfg.BaseQPS <= 0 {
		cfg.BaseQPS = 180
	}
	if cfg.PeakQPS <= cfg.BaseQPS {
		cfg.PeakQPS = cfg.BaseQPS + 380
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Families) == 0 {
		cfg.Families = models.FamilyNames(models.Zoo())
	}
	return trace.NewDiurnal(trace.DiurnalConfig{
		Seconds:           cfg.Seconds,
		BaseQPS:           cfg.BaseQPS,
		DiurnalAmplitude:  cfg.PeakQPS - cfg.BaseQPS,
		PeriodSeconds:     cfg.Seconds * 3,
		Spikes:            3,
		SpikeMagnitude:    cfg.PeakQPS / 8,
		SpikeWidthSeconds: cfg.Seconds / 20,
		NoiseFrac:         0.03,
		ZipfAlpha:         1.001,
		FamilyPhaseSpread: 0.4,
		Families:          cfg.Families,
		Seed:              cfg.Seed,
	})
}

// BurstyTraceConfig parameterizes the §6.3 macro-burst workload.
type BurstyTraceConfig struct {
	Seconds       int
	LowQPS        float64
	HighQPS       float64
	PeriodSeconds int // length of each low/high phase
	Families      []string
}

// NewBurstyTrace synthesizes the interleaved low/high demand workload.
func NewBurstyTrace(cfg BurstyTraceConfig) *Trace {
	if cfg.Seconds <= 0 {
		cfg.Seconds = 300
	}
	if cfg.LowQPS <= 0 {
		cfg.LowQPS = 150
	}
	if cfg.HighQPS <= cfg.LowQPS {
		cfg.HighQPS = cfg.LowQPS * 3
	}
	if cfg.PeriodSeconds <= 0 {
		cfg.PeriodSeconds = cfg.Seconds / 4
	}
	if len(cfg.Families) == 0 {
		cfg.Families = models.FamilyNames(models.Zoo())
	}
	return trace.NewBursty(trace.BurstyConfig{
		Seconds:      cfg.Seconds,
		LowQPS:       cfg.LowQPS,
		HighQPS:      cfg.HighQPS,
		LowSeconds:   cfg.PeriodSeconds,
		HighSeconds:  cfg.PeriodSeconds,
		ZipfAlpha:    1.001,
		Families:     cfg.Families,
		StartWithLow: true,
	})
}

// AdversarialTraceConfig parameterizes the stale-plan spike workload used
// by the overload experiments: flat base demand plus square-wave spikes on
// the heaviest family, each starting just after a control-period boundary.
type AdversarialTraceConfig struct {
	Seconds       int
	BaseQPS       float64
	SpikeQPS      float64 // added to family 0 during each spike
	SpikeSeconds  int
	PeriodSeconds int // spike spacing; align with the control period
	Families      []string
}

// NewAdversarialTrace synthesizes the stale-plan spike workload.
func NewAdversarialTrace(cfg AdversarialTraceConfig) *Trace {
	if cfg.Seconds <= 0 {
		cfg.Seconds = 300
	}
	if cfg.BaseQPS <= 0 {
		cfg.BaseQPS = 150
	}
	if cfg.SpikeQPS <= 0 {
		cfg.SpikeQPS = cfg.BaseQPS * 3
	}
	if cfg.SpikeSeconds <= 0 {
		cfg.SpikeSeconds = 10
	}
	if cfg.PeriodSeconds <= 0 {
		cfg.PeriodSeconds = 30
	}
	if len(cfg.Families) == 0 {
		cfg.Families = models.FamilyNames(models.Zoo())
	}
	return trace.NewAdversarial(trace.AdversarialConfig{
		Seconds:       cfg.Seconds,
		BaseQPS:       cfg.BaseQPS,
		SpikeQPS:      cfg.SpikeQPS,
		SpikeSeconds:  cfg.SpikeSeconds,
		PeriodSeconds: cfg.PeriodSeconds,
		ZipfAlpha:     1.001,
		Families:      cfg.Families,
	})
}
